// Template definitions for the fused sort + compress phase (see
// sort_compress.hpp).  Included by sort_compress.cpp, which explicitly
// instantiates pb_sort_compress<S> for the built-in semirings — include
// this header directly only to instantiate a custom semiring.
#pragma once

#include "pb/sort_compress.hpp"

#include <omp.h>

#include <algorithm>

#include "common/aligned_buffer.hpp"
#include "common/parallel.hpp"
#include "common/radix_sort.hpp"
#include "common/timer.hpp"
#include "pb/pb_spgemm.hpp"

namespace pbs::pb {

namespace detail {

/// Shared skeleton of the two sort+compress formats: thread-over-bins with
/// per-thread scratch and per-sub-phase busy-time accounting.
/// `make_scratch(tid, max_bin)` builds one thread's scratch handle (owning
/// its fallback buffers when there is no workspace); per bin,
/// `sort_bin(off, len, scratch)` then `compress_bin(off, len) -> merged`
/// run back to back while the bin is cache-hot, each timed into its
/// sub-phase.
template <typename MakeScratch, typename SortBin, typename CompressBin>
SortCompressResult sort_compress_driver(std::span<const nnz_t> offsets,
                                        std::span<const nnz_t> fill,
                                        int nbins, PbWorkspace* workspace,
                                        MakeScratch make_scratch,
                                        SortBin sort_bin,
                                        CompressBin compress_bin) {
  SortCompressResult out;
  out.merged.assign(static_cast<std::size_t>(nbins), 0);

  const int nthreads = max_threads();
  std::vector<double> sort_busy(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<double> compress_busy(static_cast<std::size_t>(nthreads), 0.0);

  // Per-thread scratch for the LSD sort, sized to the largest bin this
  // thread will touch.  Bins are capped at half of L2, so bin + scratch
  // stay cache-resident (see common/radix_sort.hpp).  A workspace serves
  // the scratch from its pool; without one each thread allocates its own.
  nnz_t max_bin = 0;
  for (int bin = 0; bin < nbins; ++bin) {
    max_bin = std::max(max_bin, fill[static_cast<std::size_t>(bin)]);
  }
  if (workspace != nullptr) workspace->prepare_scratch(nthreads);

#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    auto scratch = make_scratch(tid, static_cast<std::size_t>(max_bin));
    Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (int bin = 0; bin < nbins; ++bin) {
      const nnz_t off = offsets[static_cast<std::size_t>(bin)];
      const auto len =
          static_cast<std::size_t>(fill[static_cast<std::size_t>(bin)]);
      if (len == 0) continue;

      timer.reset();
      sort_bin(off, len, scratch);
      sort_busy[tid] += timer.elapsed_s();

      timer.reset();
      out.merged[static_cast<std::size_t>(bin)] = compress_bin(off, len);
      compress_busy[tid] += timer.elapsed_s();
    }
  }

  out.sort_seconds = *std::max_element(sort_busy.begin(), sort_busy.end());
  out.compress_seconds =
      *std::max_element(compress_busy.begin(), compress_busy.end());
  return out;
}

}  // namespace detail

template <typename S>
SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace) {
  struct Scratch {
    AlignedBuffer<Tuple> local;  // fallback when there is no workspace
    Tuple* data = nullptr;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.data = workspace->acquire_scratch(tid, max_bin);
        } else {
          s.local.allocate(max_bin);
          s.data = s.local.data();
        }
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        radix_sort_lsd(tuples + off, len, scratch.data,
                       [](const Tuple& tp) { return tp.key; });
      },
      // Two-pointer in-place merge (paper Sec. III-E): p1 scans, p2 marks
      // the last surviving tuple.  Duplicates combine with the semiring
      // add; survivors stay even when the combined value is S::zero().
      [&](nnz_t off, std::size_t len) -> nnz_t {
        Tuple* t = tuples + off;
        std::size_t p2 = 0;
        for (std::size_t p1 = 1; p1 < len; ++p1) {
          if (t[p1].key == t[p2].key) {
            t[p2].val = S::add(t[p2].val, t[p1].val);
          } else {
            t[++p2] = t[p1];
          }
        }
        return static_cast<nnz_t>(p2 + 1);
      });
}

template <typename S>
SortCompressResult pb_sort_compress_narrow(narrow_key_t* keys, value_t* vals,
                                           std::span<const nnz_t> offsets,
                                           std::span<const nnz_t> fill,
                                           int nbins, PbWorkspace* workspace) {
  struct Scratch {
    AlignedBuffer<narrow_key_t> local_keys;  // fallbacks without a workspace
    AlignedBuffer<value_t> local_vals;
    NarrowStream stream;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.stream = workspace->acquire_scratch_narrow(tid, max_bin);
        } else {
          s.local_keys.allocate(max_bin);
          s.local_vals.allocate(max_bin);
          s.stream = {s.local_keys.data(), s.local_vals.data()};
        }
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        radix_sort_lsd_kv(keys + off, vals + off, len, scratch.stream.keys,
                          scratch.stream.vals);
      },
      // Same merge in SoA form: the scan runs over the key array alone and
      // each surviving tuple's value is compacted exactly once.
      [&](nnz_t off, std::size_t len) -> nnz_t {
        narrow_key_t* k = keys + off;
        value_t* v = vals + off;
        std::size_t p2 = 0;
        for (std::size_t p1 = 1; p1 < len; ++p1) {
          if (k[p1] == k[p2]) {
            v[p2] = S::add(v[p2], v[p1]);
          } else {
            ++p2;
            k[p2] = k[p1];
            v[p2] = v[p1];
          }
        }
        return static_cast<nnz_t>(p2 + 1);
      });
}

}  // namespace pbs::pb
