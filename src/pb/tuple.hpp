// The expanded-matrix tuple of PB-SpGEMM.
//
// Cˆ entries are (rowid, colid, value) conceptually; physically we pack the
// two 4-byte indices into one 8-byte key so that
//   * sorting a bin is a pure integer-key radix sort with the value as
//     payload, and
//   * a tuple is exactly 16 bytes — the `b` the paper's arithmetic
//     intensity model charges per COO nonzero (Sec. II-C).
//
// Sorting by this key is lexicographic (row, col) order, which is exactly
// CSR order, so CSR conversion after compression is a streaming copy.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pbs::pb {

struct Tuple {
  std::uint64_t key;
  value_t val;
};
static_assert(sizeof(Tuple) == kBytesPerTuple,
              "tuple must stay 16 bytes; the AI model depends on it");

inline std::uint64_t make_key(index_t row, index_t col) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(col);
}

inline index_t key_row(std::uint64_t key) {
  return static_cast<index_t>(key >> 32);
}

inline index_t key_col(std::uint64_t key) {
  return static_cast<index_t>(key & 0xFFFFFFFFu);
}

}  // namespace pbs::pb
