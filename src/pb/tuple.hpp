// The expanded-matrix tuple of PB-SpGEMM, in its two physical formats.
//
// Cˆ entries are (rowid, colid, value) conceptually.  The pipeline carries
// them in one of two layouts, chosen per plan by the symbolic phase
// (pb/symbolic.hpp):
//
//  * kWide — array-of-structs `Tuple{u64 key, f64 val}`: the two 4-byte
//    indices packed into one 8-byte key, 16 bytes per tuple — the `b` the
//    paper's arithmetic-intensity model charges per COO nonzero
//    (Sec. II-C).  Sorting by the key is lexicographic (row, col) order,
//    which is exactly CSR order.
//
//  * kNarrow — structure-of-arrays `u32 key[] + f64 val[]`, 12 bytes per
//    tuple: inside a bin only the bin-relative row bits and the column
//    bits vary, so whenever row_bits + col_bits <= 32 the key shrinks to
//    `(local_row << col_bits) | col`.  This extends the paper's "squeeze
//    keys into 4-byte integers" trick from the sort phase to the whole
//    stream: expand writes 12 B/tuple, the sort's histogram passes read
//    4 B/tuple, and conversion reconstructs the global (row, col) from the
//    bin geometry while streaming.  Within a bin ascending narrow-key
//    order equals ascending (row, col) order for every bin policy, so the
//    two formats produce identical CSR.
//
//  * kKeyOnly — the 8-byte wide key with NO value array at all.  For a
//    value-free semiring (bool_or_and, or any registered semiring flagged
//    idempotent-structural) the value of every surviving entry is
//    determined by structure alone, so carrying values through the stream
//    is pure redundancy: expand writes only keys, compress is a pure
//    duplicate drop with no semiring add and no value scatter in the radix
//    passes, and conversion synthesizes the semiring's present-value
//    (1.0).  Because the key is the full global (row << 32) | col, the
//    format is legal for ANY bin geometry — no 32-bit fit constraint.
//
//  * kNarrowF32 — the narrow SoA stream with a 4-byte f32 value lane:
//    8 bytes per tuple for plans whose values are f32-representable or
//    whose op requests f32 precision.  Same fit constraint as kNarrow.
//
// The per-format byte cost feeds the roofline model through
// bytes_per_tuple(); telemetry reports which format a run used.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pbs::pb {

/// Physical layout of the expanded tuple stream (see file comment).
enum class TupleFormat {
  kWide,       ///< AoS {u64 key, f64 val}, 16 B/tuple
  kNarrow,     ///< SoA u32 bin-relative key + f64 val, 12 B/tuple
  kKeyOnly,    ///< u64 global key, no value array, 8 B/tuple (value-free)
  kNarrowF32,  ///< SoA u32 bin-relative key + f32 val, 8 B/tuple
};

const char* to_string(TupleFormat f);

struct Tuple {
  std::uint64_t key;
  value_t val;
};
static_assert(sizeof(Tuple) == kBytesPerTuple,
              "wide tuple must stay 16 bytes; the AI model depends on it");

/// Key-only format key type (the wide key, sans value array).
using wide_key_t = std::uint64_t;
inline constexpr std::size_t kBytesPerTupleKeyOnly = sizeof(wide_key_t);
static_assert(kBytesPerTupleKeyOnly == 8);

/// Narrow-format key type and its per-tuple stream cost.
using narrow_key_t = std::uint32_t;
inline constexpr std::size_t kBytesPerTupleNarrow =
    sizeof(narrow_key_t) + sizeof(value_t);
static_assert(kBytesPerTupleNarrow == 12);

/// Narrow-f32 value type and per-tuple cost (4 B key + 4 B value).
using f32_val_t = float;
inline constexpr std::size_t kBytesPerTupleNarrowF32 =
    sizeof(narrow_key_t) + sizeof(f32_val_t);
static_assert(kBytesPerTupleNarrowF32 == 8);

/// The `b` of the arithmetic-intensity equations for the given stream
/// format — what each expanded tuple actually costs to move through DRAM.
constexpr std::size_t bytes_per_tuple(TupleFormat f) {
  switch (f) {
    case TupleFormat::kWide: return kBytesPerTuple;
    case TupleFormat::kNarrow: return kBytesPerTupleNarrow;
    case TupleFormat::kKeyOnly: return kBytesPerTupleKeyOnly;
    case TupleFormat::kNarrowF32: return kBytesPerTupleNarrowF32;
  }
  return kBytesPerTuple;
}

inline std::uint64_t make_key(index_t row, index_t col) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 32) |
         static_cast<std::uint32_t>(col);
}

inline index_t key_row(std::uint64_t key) {
  return static_cast<index_t>(key >> 32);
}

inline index_t key_col(std::uint64_t key) {
  return static_cast<index_t>(key & 0xFFFFFFFFu);
}

/// Narrow-key codec.  `col_bits` is fixed per plan (ceil_log2(ncols) <= 31
/// since ncols is a positive int32); `local_row` is the bin-relative row
/// (BinLayout::local_row / global_row map it to and from the rowid).
inline narrow_key_t make_narrow_key(index_t local_row, index_t col,
                                    int col_bits) {
  return (static_cast<narrow_key_t>(local_row) << col_bits) |
         static_cast<narrow_key_t>(col);
}

inline index_t narrow_key_local_row(narrow_key_t key, int col_bits) {
  return static_cast<index_t>(key >> col_bits);
}

inline index_t narrow_key_col(narrow_key_t key, int col_bits) {
  return static_cast<index_t>(key &
                              ((narrow_key_t{1} << col_bits) - 1u));
}

}  // namespace pbs::pb
