// PB-SpGEMM — the paper's contribution (Algorithm 2), generalized over an
// arbitrary semiring.
//
// C = A ⊗ B via outer-product expansion with propagation blocking:
//
//   symbolic  — flop count + bin layout + per-bin regions       (Alg. 3)
//   expand    — k outer products (S::mul), tuples routed through
//               local bins into L2-sized global bins             (Fig. 5)
//   sort      — per-bin in-place byte-skipping radix sort        (Sec. III-D)
//   compress  — per-bin two-pointer duplicate merge (S::add)     (Sec. III-E)
//   convert   — bins → canonical CSR                             (line 22)
//
// The pipeline is semiring-agnostic: only the scalar multiply in expand
// and the duplicate-combine in compress touch values, so pb_spgemm<S>
// runs the identical bandwidth-optimized machinery for (+, ×) numeric
// SpGEMM, (min, +) shortest-path relaxation, (max, min) bottleneck paths
// and (∨, ∧) boolean reachability.  Entries that combine to S::zero()
// stay structurally present (exact-cancellation convention, matching
// spgemm_semiring).  The four built-in semirings are explicitly
// instantiated in the .cpp files, so instantiation cost is paid once and
// the pre-semiring non-template entry points keep their ABI; pb_spgemm<S>
// with a custom S additionally needs the *_impl.hpp headers.
//
// Every phase streams memory; the returned telemetry pairs each phase's
// wall time with the Table III byte model so callers can report sustained
// bandwidth the way the paper's Figs. 6/7b/9b do.  Runtime
// (algorithm × semiring) dispatch across the whole library lives in
// spgemm/registry.hpp.
#pragma once

#include <algorithm>
#include <string>

#include "common/aligned_buffer.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs::pb {

/// Reusable scratch for the expanded matrix Cˆ (flop tuples — the largest
/// allocation of the algorithm, often several times the inputs).
///
/// Re-running PB-SpGEMM with the same workspace keeps that memory mapped
/// and warm across calls, which matters twice: in iterative applications
/// (MCL, AMG setup, BFS) the allocation cost would otherwise recur every
/// iteration, and on kernels with slow page-fault paths (containers, some
/// hypervisors) first-touch faults can run an order of magnitude below
/// stream bandwidth and completely mask the algorithm.  The scratch holds
/// raw tuples, so one workspace serves every semiring instantiation.
class PbWorkspace {
 public:
  /// Buffer for at least n tuples; contents undefined.  Grows
  /// geometrically, never shrinks.
  Tuple* acquire(std::size_t n) {
    if (n > buf_.size()) {
      buf_.allocate(std::max(n, buf_.size() + buf_.size() / 2));
    }
    return buf_.data();
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

 private:
  AlignedBuffer<Tuple> buf_;
};

/// Multiplies A (CSC) by B (CSR) over semiring S.  Requires
/// a.ncols == b.nrows; throws std::invalid_argument otherwise.  This
/// convenience overload allocates a fresh workspace per call.
template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg = {});

/// Workspace-reusing variant for repeated multiplications.
template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace);

extern template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&);
extern template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const PbConfig&);
extern template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const PbConfig&);
extern template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&);
extern template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&, PbWorkspace&);

/// Numeric (+, ×) PB-SpGEMM — equivalent to pb_spgemm<PlusTimes>.  This
/// convenience overload allocates a fresh workspace per call.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg = {});

/// Workspace-reusing numeric variant for repeated multiplications.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace);

/// Runtime dispatch by semiring name ("plus_times", "min_plus", "max_min",
/// "bool_or_and"); throws std::invalid_argument listing the valid names on
/// a miss.  Keeps the full per-phase telemetry of the template form.
PbResult pb_spgemm_named(const std::string& semiring, const mtx::CscMatrix& a,
                         const mtx::CsrMatrix& b, const PbConfig& cfg,
                         PbWorkspace& workspace);

}  // namespace pbs::pb
