// PB-SpGEMM — the paper's contribution (Algorithm 2).
//
// C = A·B via outer-product expansion with propagation blocking:
//
//   symbolic  — flop count + bin layout + per-bin regions       (Alg. 3)
//   expand    — k outer products, tuples routed through local
//               bins into L2-sized global bins                  (Fig. 5)
//   sort      — per-bin in-place byte-skipping radix sort       (Sec. III-D)
//   compress  — per-bin two-pointer duplicate merge             (Sec. III-E)
//   convert   — bins → canonical CSR                            (line 22)
//
// Every phase streams memory; the returned telemetry pairs each phase's
// wall time with the Table III byte model so callers can report sustained
// bandwidth the way the paper's Figs. 6/7b/9b do.
#pragma once

#include <algorithm>

#include "common/aligned_buffer.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"

namespace pbs::pb {

/// Reusable scratch for the expanded matrix Cˆ (flop tuples — the largest
/// allocation of the algorithm, often several times the inputs).
///
/// Re-running PB-SpGEMM with the same workspace keeps that memory mapped
/// and warm across calls, which matters twice: in iterative applications
/// (MCL, AMG setup, BFS) the allocation cost would otherwise recur every
/// iteration, and on kernels with slow page-fault paths (containers, some
/// hypervisors) first-touch faults can run an order of magnitude below
/// stream bandwidth and completely mask the algorithm.
class PbWorkspace {
 public:
  /// Buffer for at least n tuples; contents undefined.  Grows
  /// geometrically, never shrinks.
  Tuple* acquire(std::size_t n) {
    if (n > buf_.size()) {
      buf_.allocate(std::max(n, buf_.size() + buf_.size() / 2));
    }
    return buf_.data();
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

 private:
  AlignedBuffer<Tuple> buf_;
};

/// Multiplies A (CSC) by B (CSR).  Requires a.ncols == b.nrows; throws
/// std::invalid_argument otherwise.  This convenience overload allocates a
/// fresh workspace per call.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg = {});

/// Workspace-reusing variant for repeated multiplications.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace);

}  // namespace pbs::pb
