// PB-SpGEMM — the paper's contribution (Algorithm 2), generalized over an
// arbitrary semiring.
//
// C = A ⊗ B via outer-product expansion with propagation blocking:
//
//   symbolic  — flop count + bin layout + per-bin regions       (Alg. 3)
//   expand    — k outer products (S::mul), tuples routed through
//               local bins into L2-sized global bins             (Fig. 5)
//   sort      — per-bin in-place byte-skipping radix sort        (Sec. III-D)
//   compress  — per-bin two-pointer duplicate merge (S::add)     (Sec. III-E)
//   convert   — bins → canonical CSR                             (line 22)
//
// The pipeline is semiring-agnostic: only the scalar multiply in expand
// and the duplicate-combine in compress touch values, so pb_spgemm<S>
// runs the identical bandwidth-optimized machinery for (+, ×) numeric
// SpGEMM, (min, +) shortest-path relaxation, (max, min) bottleneck paths
// and (∨, ∧) boolean reachability.  Entries that combine to S::zero()
// stay structurally present (exact-cancellation convention, matching
// spgemm_semiring).  The four built-in semirings are explicitly
// instantiated in the .cpp files, so instantiation cost is paid once and
// the pre-semiring non-template entry points keep their ABI; pb_spgemm<S>
// with a custom S additionally needs the *_impl.hpp headers.
//
// Every phase streams memory; the returned telemetry pairs each phase's
// wall time with the Table III byte model so callers can report sustained
// bandwidth the way the paper's Figs. 6/7b/9b do.  Runtime
// (algorithm × semiring) dispatch across the whole library lives in
// spgemm/registry.hpp.
//
// pb_spgemm is the fused form of the plan/execute split in pb/plan.hpp
// (pb_plan_build + pb_execute<S>); repeated multiplications with the same
// structure should build a plan once and execute it, or use the
// self-selecting SpGemmPlan in spgemm/plan.hpp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <atomic>

#include "common/aligned_buffer.hpp"
#include "common/errors.hpp"
#include "common/fault.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs::pb {

/// Shared byte budget for workspace memory (tuple pools + sort scratch).
/// `cap == 0` means unlimited.  Workspaces charge growth before they
/// allocate and release on destruction, so `used` tracks the pool-wide
/// retained footprint; a growth that would push `used` past `cap` is
/// rejected and surfaces as MemoryBudgetError, which the executor's
/// degradation path treats like a real bad_alloc.
struct MemoryBudget {
  std::size_t cap = 0;
  std::atomic<std::size_t> used{0};

  [[nodiscard]] bool try_reserve(std::size_t delta) noexcept {
    if (cap == 0) {
      used.fetch_add(delta, std::memory_order_relaxed);
      return true;
    }
    std::size_t cur = used.load(std::memory_order_relaxed);
    while (true) {
      if (cur + delta > cap) return false;
      if (used.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  void release(std::size_t delta) noexcept {
    used.fetch_sub(delta, std::memory_order_relaxed);
  }
};

/// The narrow tuple stream: parallel key/value arrays carved from one
/// workspace allocation (SoA counterpart of `Tuple*`; see pb/tuple.hpp).
struct NarrowStream {
  narrow_key_t* keys = nullptr;
  value_t* vals = nullptr;
};

/// The narrow-f32 tuple stream: u32 keys paired with f32 values (8 B per
/// tuple; see pb/tuple.hpp).
struct NarrowF32Stream {
  narrow_key_t* keys = nullptr;
  f32_val_t* vals = nullptr;
};

/// Pooling allocator for the pipeline's scratch memory: the expanded
/// matrix Cˆ (flop tuples — the largest allocation of the algorithm, often
/// several times the inputs) plus the per-thread radix-sort scratch of the
/// sort/compress phase.
///
/// Re-running PB-SpGEMM with the same workspace keeps that memory mapped
/// and warm across calls, which matters twice: in iterative applications
/// (MCL, AMG setup, BFS) the allocation cost would otherwise recur every
/// iteration, and on kernels with slow page-fault paths (containers, some
/// hypervisors) first-touch faults can run an order of magnitude below
/// stream bandwidth and completely mask the algorithm.  The pools hold
/// raw bytes and carve them per request, so one workspace serves every
/// semiring instantiation and all tuple formats — a 12 B/tuple narrow
/// stream fits inside the capacity a 16 B/tuple wide run of the same flop
/// left behind, and the 8 B/tuple key-only and narrow-f32 streams fit
/// inside either, so plans alternating formats reallocate nothing.
/// Crucially each lease reserves only what its format needs: a key-only
/// acquire following a wide one asks for n·8 bytes, not n·16 — the pool
/// must never charge value bytes to a format that has no value array.
///
/// Reuse statistics distinguish calls served from pooled capacity from
/// calls that had to (re)allocate — the plan/execute layer exposes them so
/// tests and benches can assert that steady-state executions allocate
/// nothing.  One acquire (wide or narrow) is one pipeline execution's
/// tuple-buffer request.  Not thread-safe across concurrent pipelines; the
/// per-thread scratch slots are safe to fill from inside one pipeline's
/// parallel region (each slot belongs to one OpenMP thread).
class PbWorkspace {
 public:
  struct Stats {
    std::uint64_t acquires = 0;     ///< total tuple-buffer requests
    std::uint64_t allocations = 0;  ///< requests that had to (re)allocate
    std::uint64_t reuses = 0;       ///< requests served from pooled capacity
    std::uint64_t scratch_allocations = 0;  ///< ditto for sort scratch slots
    std::uint64_t scratch_reuses = 0;
    std::size_t peak_request = 0;   ///< largest tuple count ever requested
    std::uint64_t budget_rejections = 0;  ///< growths refused by the budget
  };

  PbWorkspace() = default;
  PbWorkspace(const PbWorkspace&) = delete;
  PbWorkspace& operator=(const PbWorkspace&) = delete;

  // Movable (PartitionedPlan holds workspaces by value): the source hands
  // over its buffers AND its budget charge — its members are left empty,
  // so its destructor releases nothing.
  PbWorkspace(PbWorkspace&& other) noexcept
      : buf_(std::move(other.buf_)),
        scratch_(std::move(other.scratch_)),
        stats_(other.stats_),
        fresh_(other.fresh_),
        budget_(other.budget_) {
    other.scratch_.clear();
    other.budget_ = nullptr;
  }

  PbWorkspace& operator=(PbWorkspace&& other) noexcept {
    if (this != &other) {
      release_budget_charge();
      buf_ = std::move(other.buf_);
      scratch_ = std::move(other.scratch_);
      stats_ = other.stats_;
      fresh_ = other.fresh_;
      budget_ = other.budget_;
      other.scratch_.clear();
      other.budget_ = nullptr;
    }
    return *this;
  }

  ~PbWorkspace() { release_budget_charge(); }

  /// Attaches a shared byte budget; every subsequent growth is charged
  /// against it and a growth that would exceed `budget->cap` throws
  /// MemoryBudgetError instead of allocating.  Call before the first
  /// acquire (the pool does, at construction); the budget must outlive
  /// this workspace.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

  /// Wide-format buffer for at least n tuples; contents undefined.  Grows
  /// geometrically, never shrinks.
  Tuple* acquire(std::size_t n) {
    note_request(n);
    const std::uint64_t before = stats_.allocations;
    Tuple* t = reinterpret_cast<Tuple*>(
        ensure(buf_, stats_.allocations, stats_.reuses, n * sizeof(Tuple)));
    fresh_ = stats_.allocations != before;
    return t;
  }

  /// Narrow-format key + value arrays for at least n tuples, carved from
  /// the same pool as acquire(); contents undefined.  The value array
  /// starts on a cache-line boundary.
  NarrowStream acquire_narrow(std::size_t n) {
    note_request(n);
    const std::uint64_t before = stats_.allocations;
    std::byte* base = ensure(buf_, stats_.allocations, stats_.reuses,
                             narrow_bytes(n));
    fresh_ = stats_.allocations != before;
    return carve_narrow(base, n);
  }

  /// Key-only buffer for at least n tuples (n·8 bytes — the format has no
  /// value array, so nothing else is reserved); contents undefined.
  wide_key_t* acquire_keys(std::size_t n) {
    note_request(n);
    const std::uint64_t before = stats_.allocations;
    auto* k = reinterpret_cast<wide_key_t*>(ensure(
        buf_, stats_.allocations, stats_.reuses, n * sizeof(wide_key_t)));
    fresh_ = stats_.allocations != before;
    return k;
  }

  /// Narrow-f32 key + value arrays for at least n tuples; the value array
  /// starts on a cache-line boundary.  Contents undefined.
  NarrowF32Stream acquire_narrow_f32(std::size_t n) {
    note_request(n);
    const std::uint64_t before = stats_.allocations;
    std::byte* base = ensure(buf_, stats_.allocations, stats_.reuses,
                             narrow_f32_bytes(n));
    fresh_ = stats_.allocations != before;
    return carve_narrow_f32(base, n);
  }

  /// True when the most recent acquire()/acquire_narrow() had to
  /// (re)allocate the tuple pool — its pages are unmapped and their NUMA
  /// placement is still up for grabs (first-touch pending).
  [[nodiscard]] bool last_acquire_allocated() const { return fresh_; }

  /// NUMA-aware first touch of the most recent acquire's per-bin regions:
  /// each bin's byte range is touched (one write per page) from a thread
  /// running on the bin's home node (`bin_home`, pb_symbolic's
  /// flop-balanced bin→node partition), so Linux's first-touch policy
  /// places the pages where the bin's tuples will be produced and
  /// consumed.  No-op unless last_acquire_allocated() — pages of a reused
  /// pool are already placed and a touch would not migrate them.  On
  /// single-node hosts every bin is home to node 0 and this degenerates
  /// to a parallel pre-fault of the pool, which still beats serializing
  /// the faults into the first expand flush.  `bin_offsets` / `format`
  /// must be the geometry the acquire was sized for.
  void place_bins(std::span<const nnz_t> bin_offsets,
                  std::span<const int> bin_home, TupleFormat format);

  /// Ensures `nthreads` scratch slots exist.  Call before the parallel
  /// region that uses acquire_scratch.
  void prepare_scratch(int nthreads) {
    if (scratch_.size() < static_cast<std::size_t>(nthreads)) {
      scratch_.resize(static_cast<std::size_t>(nthreads));
    }
  }

  /// Per-thread sort scratch of at least n tuples; contents undefined.
  /// Each slot is owned by one thread, so slots carry their own counters
  /// (aggregated in stats()) without synchronization.
  Tuple* acquire_scratch(std::size_t slot, std::size_t n) {
    ScratchSlot& s = scratch_[slot];
    return reinterpret_cast<Tuple*>(
        ensure(s.buf, s.allocations, s.reuses, n * sizeof(Tuple)));
  }

  /// Narrow-format per-thread sort scratch (key + value arrays of n).
  NarrowStream acquire_scratch_narrow(std::size_t slot, std::size_t n) {
    ScratchSlot& s = scratch_[slot];
    std::byte* base = ensure(s.buf, s.allocations, s.reuses, narrow_bytes(n));
    return carve_narrow(base, n);
  }

  /// Key-only per-thread sort scratch of at least n keys (n·8 bytes).
  wide_key_t* acquire_scratch_keys(std::size_t slot, std::size_t n) {
    ScratchSlot& s = scratch_[slot];
    return reinterpret_cast<wide_key_t*>(
        ensure(s.buf, s.allocations, s.reuses, n * sizeof(wide_key_t)));
  }

  /// Narrow-f32 per-thread sort scratch (key + f32 value arrays of n).
  NarrowF32Stream acquire_scratch_narrow_f32(std::size_t slot,
                                             std::size_t n) {
    ScratchSlot& s = scratch_[slot];
    std::byte* base =
        ensure(s.buf, s.allocations, s.reuses, narrow_f32_bytes(n));
    return carve_narrow_f32(base, n);
  }

  /// Retained pool capacity in bytes.
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Aggregated reuse statistics (tuple pool + scratch slots).
  [[nodiscard]] Stats stats() const {
    Stats s = stats_;
    for (const ScratchSlot& slot : scratch_) {
      s.scratch_allocations += slot.allocations;
      s.scratch_reuses += slot.reuses;
    }
    return s;
  }

  void reset_stats() {
    stats_ = {};
    for (ScratchSlot& slot : scratch_) slot.allocations = slot.reuses = 0;
  }

 private:
  struct ScratchSlot {
    AlignedBuffer<std::byte> buf;
    std::uint64_t allocations = 0;
    std::uint64_t reuses = 0;
  };

  void note_request(std::size_t n) {
    ++stats_.acquires;
    stats_.peak_request = std::max(stats_.peak_request, n);
  }

  /// Keys, padded to a cache line, then values.
  static std::size_t narrow_bytes(std::size_t n) {
    return key_span(n) + n * sizeof(value_t);
  }

  static std::size_t key_span(std::size_t n) {
    return (n * sizeof(narrow_key_t) + kCacheLineBytes - 1) /
           kCacheLineBytes * kCacheLineBytes;
  }

  static NarrowStream carve_narrow(std::byte* base, std::size_t n) {
    return {reinterpret_cast<narrow_key_t*>(base),
            reinterpret_cast<value_t*>(base + key_span(n))};
  }

  /// Keys, padded to a cache line, then f32 values.
  static std::size_t narrow_f32_bytes(std::size_t n) {
    return key_span(n) + n * sizeof(f32_val_t);
  }

  static NarrowF32Stream carve_narrow_f32(std::byte* base, std::size_t n) {
    return {reinterpret_cast<narrow_key_t*>(base),
            reinterpret_cast<f32_val_t*>(base + key_span(n))};
  }

  std::byte* ensure(AlignedBuffer<std::byte>& buf, std::uint64_t& allocations,
                    std::uint64_t& reuses, std::size_t bytes) {
    if (bytes > buf.size()) {
      ++allocations;
      grow(buf, std::max(bytes, buf.size() + buf.size() / 2));
    } else {
      ++reuses;
    }
    return buf.data();
  }

  /// Grows `buf` to `target` elements, charging the budget first.  The
  /// invariant is charged-per-buffer == buf.size(): growth charges the
  /// delta; a failed aligned_alloc leaves the buffer empty (allocate
  /// frees the old block before allocating), so the whole `target`
  /// charge is released on the way out.
  void grow(AlignedBuffer<std::byte>& buf, std::size_t target) {
    FaultInjector::on_alloc(target);
    if (budget_ != nullptr && !budget_->try_reserve(target - buf.size())) {
      ++stats_.budget_rejections;
      throw MemoryBudgetError(
          "pb workspace growth to " + std::to_string(target) +
          " bytes exceeds the memory budget (cap " +
          std::to_string(budget_->cap) + ", used " +
          std::to_string(budget_->used.load(std::memory_order_relaxed)) +
          ")");
    }
    try {
      buf.allocate(target);
    } catch (...) {
      if (budget_ != nullptr) budget_->release(target);
      throw;
    }
  }

  /// Returns this workspace's entire charge to the budget (destructor /
  /// move-assign target teardown).
  void release_budget_charge() noexcept {
    if (budget_ == nullptr) return;
    std::size_t held = buf_.size();
    for (const ScratchSlot& s : scratch_) held += s.buf.size();
    if (held > 0) budget_->release(held);
    budget_ = nullptr;
  }

  AlignedBuffer<std::byte> buf_;
  std::vector<ScratchSlot> scratch_;
  Stats stats_;
  bool fresh_ = false;
  MemoryBudget* budget_ = nullptr;
};

/// Multiplies A (CSC) by B (CSR) over semiring S.  Requires
/// a.ncols == b.nrows; throws std::invalid_argument otherwise.  This
/// convenience overload allocates a fresh workspace per call.
template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg = {});

/// Workspace-reusing variant for repeated multiplications.
template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace);

extern template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&);
extern template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const PbConfig&);
extern template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const PbConfig&);
extern template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&);
extern template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const PbConfig&, PbWorkspace&);
extern template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                              const mtx::CsrMatrix&,
                                              const PbConfig&, PbWorkspace&);

/// Numeric (+, ×) PB-SpGEMM — equivalent to pb_spgemm<PlusTimes>.  This
/// convenience overload allocates a fresh workspace per call.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg = {});

/// Workspace-reusing numeric variant for repeated multiplications.
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace);

/// Runtime dispatch by semiring name ("plus_times", "min_plus", "max_min",
/// "bool_or_and"); throws std::invalid_argument listing the valid names on
/// a miss.  Keeps the full per-phase telemetry of the template form.
PbResult pb_spgemm_named(const std::string& semiring, const mtx::CscMatrix& a,
                         const mtx::CsrMatrix& b, const PbConfig& cfg,
                         PbWorkspace& workspace);

}  // namespace pbs::pb
