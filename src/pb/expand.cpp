#include "pb/expand_impl.hpp"

#include "spgemm/op.hpp"

namespace pbs::pb {

template nnz_t pb_expand<PlusTimes>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&,
                                    const SymbolicResult&, const PbConfig&,
                                    Tuple*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand<MinPlus>(const mtx::CscMatrix&, const mtx::CsrMatrix&,
                                  const SymbolicResult&, const PbConfig&,
                                  Tuple*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand<MaxMin>(const mtx::CscMatrix&, const mtx::CsrMatrix&,
                                 const SymbolicResult&, const PbConfig&,
                                 Tuple*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand<BoolOrAnd>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&,
                                    const SymbolicResult&, const PbConfig&,
                                    Tuple*, const MaskSpec&, nnz_t*);

template nnz_t pb_expand_narrow<PlusTimes>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, narrow_key_t*,
                                           value_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow<MinPlus>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const SymbolicResult&,
                                         const PbConfig&, narrow_key_t*,
                                         value_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow<MaxMin>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&,
                                        const SymbolicResult&,
                                        const PbConfig&, narrow_key_t*,
                                        value_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow<BoolOrAnd>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, narrow_key_t*,
                                           value_t*, const MaskSpec&, nnz_t*);

template nnz_t pb_expand_narrow_f32<PlusTimes>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const SymbolicResult&,
                                               const PbConfig&, narrow_key_t*,
                                               f32_val_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow_f32<MinPlus>(const mtx::CscMatrix&,
                                             const mtx::CsrMatrix&,
                                             const SymbolicResult&,
                                             const PbConfig&, narrow_key_t*,
                                             f32_val_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow_f32<MaxMin>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const SymbolicResult&,
                                            const PbConfig&, narrow_key_t*,
                                            f32_val_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow_f32<BoolOrAnd>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const SymbolicResult&,
                                               const PbConfig&, narrow_key_t*,
                                               f32_val_t*, const MaskSpec&, nnz_t*);

// The runtime-semiring bridge (spgemm/op.hpp): S::mul indirects through
// the active RuntimeSemiring's closure; routing and blocking are identical.
template nnz_t pb_expand<DynSemiring>(const mtx::CscMatrix&,
                                      const mtx::CsrMatrix&,
                                      const SymbolicResult&, const PbConfig&,
                                      Tuple*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow<DynSemiring>(const mtx::CscMatrix&,
                                             const mtx::CsrMatrix&,
                                             const SymbolicResult&,
                                             const PbConfig&, narrow_key_t*,
                                             value_t*, const MaskSpec&, nnz_t*);
template nnz_t pb_expand_narrow_f32<DynSemiring>(const mtx::CscMatrix&,
                                                 const mtx::CsrMatrix&,
                                                 const SymbolicResult&,
                                                 const PbConfig&,
                                                 narrow_key_t*, f32_val_t*, const MaskSpec&, nnz_t*);

nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                const MaskSpec& emask, nnz_t* actual_fill) {
  return pb_expand<PlusTimes>(a, b, sym, cfg, out, emask, actual_fill);
}

nnz_t pb_expand_keyonly(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                        const SymbolicResult& sym, const PbConfig& cfg,
                        wide_key_t* out_keys, const MaskSpec& emask,
                        nnz_t* actual_fill) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return detail::expand_keyonly_impl<BinPolicy::kRange>(
          a, b, sym, cfg, out_keys, emask, actual_fill);
    case BinPolicy::kModulo:
      return detail::expand_keyonly_impl<BinPolicy::kModulo>(
          a, b, sym, cfg, out_keys, emask, actual_fill);
    case BinPolicy::kAdaptive:
      return detail::expand_keyonly_impl<BinPolicy::kAdaptive>(
          a, b, sym, cfg, out_keys, emask, actual_fill);
  }
  return 0;
}

}  // namespace pbs::pb
