#include "pb/expand_impl.hpp"

#include "spgemm/op.hpp"

namespace pbs::pb {

template nnz_t pb_expand<PlusTimes>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&,
                                    const SymbolicResult&, const PbConfig&,
                                    Tuple*);
template nnz_t pb_expand<MinPlus>(const mtx::CscMatrix&, const mtx::CsrMatrix&,
                                  const SymbolicResult&, const PbConfig&,
                                  Tuple*);
template nnz_t pb_expand<MaxMin>(const mtx::CscMatrix&, const mtx::CsrMatrix&,
                                 const SymbolicResult&, const PbConfig&,
                                 Tuple*);
template nnz_t pb_expand<BoolOrAnd>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&,
                                    const SymbolicResult&, const PbConfig&,
                                    Tuple*);

template nnz_t pb_expand_narrow<PlusTimes>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, narrow_key_t*,
                                           value_t*);
template nnz_t pb_expand_narrow<MinPlus>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const SymbolicResult&,
                                         const PbConfig&, narrow_key_t*,
                                         value_t*);
template nnz_t pb_expand_narrow<MaxMin>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&,
                                        const SymbolicResult&,
                                        const PbConfig&, narrow_key_t*,
                                        value_t*);
template nnz_t pb_expand_narrow<BoolOrAnd>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, narrow_key_t*,
                                           value_t*);

template nnz_t pb_expand_narrow_f32<PlusTimes>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const SymbolicResult&,
                                               const PbConfig&, narrow_key_t*,
                                               f32_val_t*);
template nnz_t pb_expand_narrow_f32<MinPlus>(const mtx::CscMatrix&,
                                             const mtx::CsrMatrix&,
                                             const SymbolicResult&,
                                             const PbConfig&, narrow_key_t*,
                                             f32_val_t*);
template nnz_t pb_expand_narrow_f32<MaxMin>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const SymbolicResult&,
                                            const PbConfig&, narrow_key_t*,
                                            f32_val_t*);
template nnz_t pb_expand_narrow_f32<BoolOrAnd>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const SymbolicResult&,
                                               const PbConfig&, narrow_key_t*,
                                               f32_val_t*);

// The runtime-semiring bridge (spgemm/op.hpp): S::mul indirects through
// the active RuntimeSemiring's closure; routing and blocking are identical.
template nnz_t pb_expand<DynSemiring>(const mtx::CscMatrix&,
                                      const mtx::CsrMatrix&,
                                      const SymbolicResult&, const PbConfig&,
                                      Tuple*);
template nnz_t pb_expand_narrow<DynSemiring>(const mtx::CscMatrix&,
                                             const mtx::CsrMatrix&,
                                             const SymbolicResult&,
                                             const PbConfig&, narrow_key_t*,
                                             value_t*);
template nnz_t pb_expand_narrow_f32<DynSemiring>(const mtx::CscMatrix&,
                                                 const mtx::CsrMatrix&,
                                                 const SymbolicResult&,
                                                 const PbConfig&,
                                                 narrow_key_t*, f32_val_t*);

nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out) {
  return pb_expand<PlusTimes>(a, b, sym, cfg, out);
}

nnz_t pb_expand_keyonly(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                        const SymbolicResult& sym, const PbConfig& cfg,
                        wide_key_t* out_keys) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return detail::expand_keyonly_impl<BinPolicy::kRange>(a, b, sym, cfg,
                                                            out_keys);
    case BinPolicy::kModulo:
      return detail::expand_keyonly_impl<BinPolicy::kModulo>(a, b, sym, cfg,
                                                             out_keys);
    case BinPolicy::kAdaptive:
      return detail::expand_keyonly_impl<BinPolicy::kAdaptive>(a, b, sym, cfg,
                                                               out_keys);
  }
  return 0;
}

}  // namespace pbs::pb
