#include "pb/sort_compress_impl.hpp"

#include "spgemm/op.hpp"

namespace pbs::pb {

template SortCompressResult pb_sort_compress<PlusTimes>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&);
template SortCompressResult pb_sort_compress<MinPlus>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&);
template SortCompressResult pb_sort_compress<MaxMin>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&);
template SortCompressResult pb_sort_compress<BoolOrAnd>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&);
template SortCompressResult pb_sort_compress<DynSemiring>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&);

template SortCompressResult pb_sort_compress_narrow<PlusTimes>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int);
template SortCompressResult pb_sort_compress_narrow<MinPlus>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int);
template SortCompressResult pb_sort_compress_narrow<MaxMin>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int);
template SortCompressResult pb_sort_compress_narrow<BoolOrAnd>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int);
template SortCompressResult pb_sort_compress_narrow<DynSemiring>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int);

SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace) {
  return pb_sort_compress<PlusTimes>(tuples, offsets, fill, nbins, workspace);
}

}  // namespace pbs::pb
