#include "pb/sort_compress_impl.hpp"

#include "spgemm/op.hpp"

namespace pbs::pb {

template SortCompressResult pb_sort_compress<PlusTimes>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress<MinPlus>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress<MaxMin>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress<BoolOrAnd>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress<DynSemiring>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);

template SortCompressResult pb_sort_compress_narrow<PlusTimes>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow<MinPlus>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow<MaxMin>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow<BoolOrAnd>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow<DynSemiring>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);

template SortCompressResult pb_sort_compress_narrow_f32<PlusTimes>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow_f32<MinPlus>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow_f32<MaxMin>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow_f32<BoolOrAnd>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
template SortCompressResult pb_sort_compress_narrow_f32<DynSemiring>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);

SortCompressResult pb_sort_compress_keyonly(wide_key_t* keys,
                                            std::span<const nnz_t> offsets,
                                            std::span<const nnz_t> fill,
                                            int nbins, PbWorkspace* workspace,
                                            const MaskSpec& mask,
                                            const CancelToken* cancel) {
  const KeyOnlyBinOps ops{keys, &mask};
  struct Scratch {
    AlignedBuffer<wide_key_t> local;  // fallback when there is no workspace
    wide_key_t* data = nullptr;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.data = workspace->acquire_scratch_keys(tid, max_bin);
        } else {
          s.local.allocate(max_bin);
          s.data = s.local.data();
        }
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        ops.sort(off, len, scratch.data);
      },
      [&](nnz_t off, std::size_t len) { return ops.compress(off, len); },
      [&](int bin, nnz_t off, nnz_t merged) {
        return ops.filter(bin, off, merged);
      },
      // Post-ops read values; the key-only stream has none (rejected at
      // plan time), so this stage is the identity.
      [](int /*bin*/, nnz_t /*off*/, nnz_t kept) { return kept; },
      cancel);
}

SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace) {
  return pb_sort_compress<PlusTimes>(tuples, offsets, fill, nbins, workspace);
}

}  // namespace pbs::pb
