// Template definition of the PB-SpGEMM pipeline driver (see
// pb_spgemm.hpp).  The pipeline is the plan/execute split of plan.hpp run
// back to back: build the symbolic plan, execute it once, and fold the
// analysis cost back into the returned telemetry.  Included by
// pb_spgemm.cpp, which explicitly instantiates pb_spgemm<S> for the
// built-in semirings — include this header (plus plan_impl.hpp,
// expand_impl.hpp and sort_compress_impl.hpp) directly only to
// instantiate a custom semiring.
#pragma once

#include "pb/pb_spgemm.hpp"
#include "pb/plan.hpp"

namespace pbs::pb {

template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg) {
  PbWorkspace workspace;
  return pb_spgemm<S>(a, b, cfg, workspace);
}

template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace) {
  const PbPlan plan = pb_plan_build(a, b, cfg);
  // The plan was built from these exact operands: skip the fingerprint.
  PbResult result =
      pb_execute<S>(a, b, plan, workspace, /*check_fingerprint=*/false);
  // A fresh multiply pays the analysis in-line; a reused plan pays it once
  // at build time (pb_execute leaves the symbolic phase at zero).
  result.stats.symbolic = plan.symbolic;
  return result;
}

}  // namespace pbs::pb
