// Template definition of the PB-SpGEMM pipeline driver (see
// pb_spgemm.hpp).  The pipeline is the plan/execute split of plan.hpp run
// back to back: build the symbolic plan, execute it once, and fold the
// analysis cost back into the returned telemetry.  Included by
// pb_spgemm.cpp, which explicitly instantiates pb_spgemm<S> for the
// built-in semirings — include this header (plus plan_impl.hpp,
// expand_impl.hpp and sort_compress_impl.hpp) directly only to
// instantiate a custom semiring.
#pragma once

#include "pb/pb_spgemm.hpp"
#include "pb/plan.hpp"

namespace pbs::pb {

template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg) {
  PbWorkspace workspace;
  return pb_spgemm<S>(a, b, cfg, workspace);
}

template <typename S>
PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace) {
  // The fused path knows its semiring at compile time, so it can vouch for
  // value-freeness itself — plan building sees the flag and may pick the
  // 8 B key-only stream (callers going through pb_plan_build directly set
  // cfg.value_free by hand or via the executor's name-keyed derivation).
  PbConfig cfg2 = cfg;
  if (!cfg2.value_free) cfg2.value_free = semiring_is_value_free<S>();
  const PbPlan plan = pb_plan_build(a, b, cfg2);
  // The plan was built from these exact operands: skip the fingerprint.
  // The caller's token rides cfg (pb_plan_build stores nullptr; the run
  // gets the live one as pb_execute's explicit parameter).
  PbResult result = pb_execute<S>(a, b, plan, workspace,
                                  /*check_fingerprint=*/false, MaskSpec{},
                                  cfg.cancel);
  // A fresh multiply pays the analysis in-line; a reused plan pays it once
  // at build time (pb_execute leaves the symbolic phase at zero).
  result.stats.symbolic = plan.symbolic;
  return result;
}

}  // namespace pbs::pb
