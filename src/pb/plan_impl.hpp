// Template definition of the plan-execute stage (see plan.hpp).  Included
// by plan.cpp, which explicitly instantiates pb_execute<S> for the
// built-in semirings — include this header (plus expand_impl.hpp and
// sort_compress_impl.hpp) directly only to instantiate a custom semiring.
#pragma once

#include <stdexcept>
#include <vector>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "pb/expand.hpp"
#include "pb/output.hpp"
#include "pb/output_accum.hpp"
#include "pb/pipeline_impl.hpp"
#include "pb/plan.hpp"
#include "pb/sort_compress.hpp"

namespace pbs::pb {

namespace detail {

/// Epilogue preconditions shared by both schedule drivers (see
/// PbEpilogue's contract in pb_config.hpp).
inline void validate_epilogue(const PbEpilogue& epi, TupleFormat fmt,
                              index_t nrows, index_t ncols) {
  if (epi.accumulate != nullptr && epi.post_op.active()) {
    throw std::invalid_argument(
        "pb_execute: accumulate and post-op epilogues are mutually "
        "exclusive (prune/top-k over a merged C is ambiguous; run them as "
        "separate multiplies)");
  }
  if (epi.accumulate != nullptr && (epi.accumulate->nrows != nrows ||
                                    epi.accumulate->ncols != ncols)) {
    throw std::invalid_argument(
        "pb_execute: accumulate operand shape does not match the product");
  }
  if (epi.post_op.active() && fmt == TupleFormat::kKeyOnly) {
    throw std::invalid_argument(
        "pb_execute: elementwise post-ops need a valued tuple stream; the "
        "key-only format carries no values (value-free semiring)");
  }
}

}  // namespace detail

template <typename S>
PbResult pb_execute(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                    const PbPlan& plan, PbWorkspace& workspace,
                    bool check_fingerprint, const MaskSpec& mask,
                    const CancelToken* cancel, const PbEpilogue& epi) {
  if (check_fingerprint && !plan.matches(a, b)) {
    throw std::invalid_argument(
        "pb_execute: operands do not match the plan's structure fingerprint "
        "(dims/nnz/flop changed); rebuild the plan with pb_plan_build");
  }
  if (mask.active() &&
      (mask.csr->nrows != a.nrows || mask.csr->ncols != b.ncols)) {
    throw std::invalid_argument(
        "pb_execute: mask shape does not match the product");
  }
  detail::validate_epilogue(epi, plan.sym.format, a.nrows, b.ncols);
  throw_if_stopped(cancel);

  // Schedule resolution happens here, at execute time, so one plan serves
  // both schedules (and kAuto can track the thread count of each run).
  if (resolve_schedule(plan.cfg.schedule, max_threads()) ==
      PbSchedule::kPipeline) {
    return pb_execute_pipeline<S>(a, b, plan, workspace, mask, cancel, epi);
  }

  // Run-local config: the plan's captured config plus this run's token,
  // threaded into expand (whose entry points read cfg.cancel).
  PbConfig run_cfg = plan.cfg;
  run_cfg.cancel = cancel;

  const SymbolicResult& sym = plan.sym;
  const TupleFormat fmt = sym.format;
  const int nbins = sym.layout.nbins;
  PbResult result;
  PbTelemetry& tm = result.stats;
  Timer timer;

  // Analysis was paid at plan-build time: tm.symbolic stays zero here
  // (plan.symbolic records the build cost; pb_spgemm folds it back in for
  // the fused build+execute path).
  tm.flop = sym.flop;
  tm.nbins = nbins;
  // rows_per_bin contract: the range policy reports its power-of-two bin
  // width; modulo and adaptive layouts have no single contiguous width and
  // report 0 (see BinLayout::rows_per_bin).
  tm.rows_per_bin = sym.layout.rows_per_bin();
  tm.format = sym.format;
  tm.schedule = PbSchedule::kBarrier;
  // The `b` each tuple of this run's stream costs — the per-format Table
  // III accounting below runs on it.
  const double bpt = tm.tuple_bytes();

  // Fused expand-time mask (per run — the mask pattern is run state).
  // When it engages, the scatter loops skip masked-out tuples outright,
  // bins hold fewer tuples than the symbolic fill marks, and the
  // compress-stage filter has nothing left to drop.
  const bool expand_masked =
      engage_expand_mask(mask, run_cfg, a.nrows, b.ncols);
  const MaskSpec emask = expand_masked ? mask : MaskSpec{};
  std::vector<nnz_t> actual_fill_vec;
  nnz_t* actual_fill = nullptr;
  if (expand_masked) {
    actual_fill_vec.assign(static_cast<std::size_t>(nbins), 0);
    actual_fill = actual_fill_vec.data();
  }

  // ---- expand (S::mul; key-only skips the multiply entirely) ----
  FaultInjector::at(FaultPoint::kExpand);
  timer.reset();
  const auto buf_len = static_cast<std::size_t>(sym.bin_offsets.back());
  Tuple* expanded = nullptr;
  NarrowStream ns;
  NarrowF32Stream nf;
  wide_key_t* keys_only = nullptr;
  switch (fmt) {
    case TupleFormat::kNarrow:
      ns = workspace.acquire_narrow(buf_len);
      workspace.place_bins(sym.bin_offsets, sym.bin_home, fmt);
      pb_expand_narrow<S>(a, b, sym, run_cfg, ns.keys, ns.vals, emask,
                          actual_fill);
      break;
    case TupleFormat::kNarrowF32:
      nf = workspace.acquire_narrow_f32(buf_len);
      workspace.place_bins(sym.bin_offsets, sym.bin_home, fmt);
      pb_expand_narrow_f32<S>(a, b, sym, run_cfg, nf.keys, nf.vals, emask,
                              actual_fill);
      break;
    case TupleFormat::kKeyOnly:
      keys_only = workspace.acquire_keys(buf_len);
      workspace.place_bins(sym.bin_offsets, sym.bin_home, fmt);
      pb_expand_keyonly(a, b, sym, run_cfg, keys_only, emask, actual_fill);
      break;
    case TupleFormat::kWide:
      expanded = workspace.acquire(buf_len);
      workspace.place_bins(sym.bin_offsets, sym.bin_home, fmt);
      pb_expand<S>(a, b, sym, run_cfg, expanded, emask, actual_fill);
      break;
  }
  throw_if_stopped(cancel);
  tm.expand.seconds = timer.elapsed_s();
  // Tuples this run actually generated: flop, minus whatever the fused
  // expand mask skipped in the scatter loops.
  nnz_t generated = sym.flop;
  if (expand_masked) {
    generated = 0;
    for (const nnz_t f : actual_fill_vec) generated += f;
    tm.mask_skipped_expand = sym.flop - generated;
    tm.expand_masked = true;
  }
  // Table III: read both inputs once (at the paper's wide COO cost), write
  // the generated tuples at the stream format's cost (skipped tuples are
  // never multiplied or written — the point of expand masking).
  tm.expand.bytes =
      static_cast<double>(kBytesPerTuple) *
          (static_cast<double>(a.nnz()) + static_cast<double>(b.nnz())) +
      bpt * static_cast<double>(generated);

  // ---- sort + compress (fused per bin, timed separately; S::add) ----
  // The fused mask rides here too — unless expand already applied it, in
  // which case every surviving tuple is in-mask by construction and the
  // filter is skipped.  The elementwise post-op (epi.post_op) runs in the
  // same per-bin filter stage while the bin is cache-hot.
  FaultInjector::at(FaultPoint::kSortCompress);
  timer.reset();
  const std::span<const nnz_t> fills =
      expand_masked ? std::span<const nnz_t>(actual_fill_vec)
                    : std::span<const nnz_t>(sym.bin_fill);
  const MaskSpec cmask = expand_masked ? MaskSpec{} : mask;
  SortCompressResult sc;
  switch (fmt) {
    case TupleFormat::kNarrow:
      sc = pb_sort_compress_narrow<S>(ns.keys, ns.vals, sym.bin_offsets,
                                      fills, nbins, &workspace, cmask,
                                      &sym.layout, sym.col_bits, cancel,
                                      epi.post_op);
      break;
    case TupleFormat::kNarrowF32:
      sc = pb_sort_compress_narrow_f32<S>(nf.keys, nf.vals, sym.bin_offsets,
                                          fills, nbins, &workspace, cmask,
                                          &sym.layout, sym.col_bits, cancel,
                                          epi.post_op);
      break;
    case TupleFormat::kKeyOnly:
      sc = pb_sort_compress_keyonly(keys_only, sym.bin_offsets, fills, nbins,
                                    &workspace, cmask, cancel);
      break;
    case TupleFormat::kWide:
      sc = pb_sort_compress<S>(expanded, sym.bin_offsets, fills, nbins,
                               &workspace, cmask, cancel, epi.post_op);
      break;
  }
  throw_if_stopped(cancel);
  const double sc_wall = timer.elapsed_s();
  // Attribute the fused loop's wall time proportionally to the measured
  // per-thread busy times (their ratio is exact; the split of idle time is
  // the approximation).
  const double busy = sc.sort_seconds + sc.compress_seconds;
  const double sort_share = busy > 0 ? sc.sort_seconds / busy : 0.5;
  tm.sort.seconds = sc_wall * sort_share;
  tm.compress.seconds = sc_wall * (1.0 - sort_share);
  // Table III: the sort streams the bin in (shuffles are in-cache); the
  // compress writes every merged tuple — including the ones the mask and
  // post-op then discard in-cache (reads are in-cache).
  tm.sort.bytes = bpt * static_cast<double>(generated);
  nnz_t nnz_c = 0;
  for (const nnz_t m : sc.merged) nnz_c += m;
  tm.nnz_c = nnz_c;
  tm.mask_dropped = sc.mask_dropped;
  tm.post_dropped = sc.post_dropped;
  tm.compress.bytes =
      bpt * static_cast<double>(nnz_c + sc.mask_dropped + sc.post_dropped);

  // ---- convert to CSR (semiring-independent; key-only synthesizes the
  // present-value, f32 widens back to the library's f64 CSR).  With an
  // accumulate epilogue the conversion union-merges C's rows per bin
  // instead (output_accum.hpp) — the post-pass never runs. ----
  FaultInjector::at(FaultPoint::kConvert);
  timer.reset();
  if (epi.accumulate != nullptr) {
    const mtx::CsrMatrix& c_old = *epi.accumulate;
    switch (fmt) {
      case TupleFormat::kNarrow:
        result.c = pb_build_csr_accum_narrow<S>(
            ns.keys, ns.vals, sym.bin_offsets, sc.merged, c_old, sym.layout,
            sym.col_bits, a.nrows, b.ncols, cancel);
        break;
      case TupleFormat::kNarrowF32:
        result.c = pb_build_csr_accum_narrow_f32<S>(
            nf.keys, nf.vals, sym.bin_offsets, sc.merged, c_old, sym.layout,
            sym.col_bits, a.nrows, b.ncols, cancel);
        break;
      case TupleFormat::kKeyOnly:
        result.c = pb_build_csr_accum_keyonly<S>(
            keys_only, sym.bin_offsets, sc.merged, c_old, sym.layout, a.nrows,
            b.ncols, 1.0, cancel);
        break;
      case TupleFormat::kWide:
        result.c =
            pb_build_csr_accum<S>(expanded, sym.bin_offsets, sc.merged, c_old,
                                  sym.layout, a.nrows, b.ncols, cancel);
        break;
    }
  } else {
    switch (fmt) {
      case TupleFormat::kNarrow:
        result.c = pb_build_csr_narrow(ns.keys, ns.vals, sym.bin_offsets,
                                       sc.merged, sym.layout, sym.col_bits,
                                       a.nrows, b.ncols, cancel);
        break;
      case TupleFormat::kNarrowF32:
        result.c = pb_build_csr_narrow_f32(nf.keys, nf.vals, sym.bin_offsets,
                                           sc.merged, sym.layout,
                                           sym.col_bits, a.nrows, b.ncols,
                                           cancel);
        break;
      case TupleFormat::kKeyOnly:
        result.c = pb_build_csr_keyonly(keys_only, sym.bin_offsets, sc.merged,
                                        a.nrows, b.ncols, 1.0, cancel);
        break;
      case TupleFormat::kWide:
        result.c = pb_build_csr(expanded, sym.bin_offsets, sc.merged, a.nrows,
                                b.ncols, cancel);
        break;
    }
  }
  throw_if_stopped(cancel);
  tm.convert.seconds = timer.elapsed_s();
  // Reads the merged tuples, writes colids+vals and two rowptr passes;
  // an accumulate additionally streams C_old in and writes the union.
  tm.convert.bytes =
      (bpt + static_cast<double>(sizeof(index_t) + sizeof(value_t))) *
          static_cast<double>(nnz_c) +
      2.0 * static_cast<double>(sizeof(nnz_t)) * static_cast<double>(a.nrows);
  if (epi.accumulate != nullptr) {
    const auto entry =
        static_cast<double>(sizeof(index_t) + sizeof(value_t));
    tm.convert.bytes +=
        entry * static_cast<double>(epi.accumulate->nnz()) +       // C_old in
        entry * static_cast<double>(result.c.nnz() - nnz_c);       // extra out
  }

  return result;
}

}  // namespace pbs::pb
