// Template definition of the plan-execute stage (see plan.hpp).  Included
// by plan.cpp, which explicitly instantiates pb_execute<S> for the
// built-in semirings — include this header (plus expand_impl.hpp and
// sort_compress_impl.hpp) directly only to instantiate a custom semiring.
#pragma once

#include <stdexcept>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "pb/expand.hpp"
#include "pb/output.hpp"
#include "pb/pipeline_impl.hpp"
#include "pb/plan.hpp"
#include "pb/sort_compress.hpp"

namespace pbs::pb {

template <typename S>
PbResult pb_execute(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                    const PbPlan& plan, PbWorkspace& workspace,
                    bool check_fingerprint, const MaskSpec& mask) {
  if (check_fingerprint && !plan.matches(a, b)) {
    throw std::invalid_argument(
        "pb_execute: operands do not match the plan's structure fingerprint "
        "(dims/nnz/flop changed); rebuild the plan with pb_plan_build");
  }
  if (mask.active() &&
      (mask.csr->nrows != a.nrows || mask.csr->ncols != b.ncols)) {
    throw std::invalid_argument(
        "pb_execute: mask shape does not match the product");
  }

  // Schedule resolution happens here, at execute time, so one plan serves
  // both schedules (and kAuto can track the thread count of each run).
  if (resolve_schedule(plan.cfg.schedule, max_threads()) ==
      PbSchedule::kPipeline) {
    return pb_execute_pipeline<S>(a, b, plan, workspace, mask);
  }

  const SymbolicResult& sym = plan.sym;
  const bool narrow = sym.format == TupleFormat::kNarrow;
  PbResult result;
  PbTelemetry& tm = result.stats;
  Timer timer;

  // Analysis was paid at plan-build time: tm.symbolic stays zero here
  // (plan.symbolic records the build cost; pb_spgemm folds it back in for
  // the fused build+execute path).
  tm.flop = sym.flop;
  tm.nbins = sym.layout.nbins;
  // rows_per_bin contract: the range policy reports its power-of-two bin
  // width; modulo and adaptive layouts have no single contiguous width and
  // report 0 (see BinLayout::rows_per_bin).
  tm.rows_per_bin = sym.layout.rows_per_bin();
  tm.format = sym.format;
  tm.schedule = PbSchedule::kBarrier;
  // The `b` each tuple of this run's stream costs — the per-format Table
  // III accounting below runs on it.
  const double bpt = tm.tuple_bytes();

  // ---- expand (S::mul) ----
  timer.reset();
  const auto buf_len = static_cast<std::size_t>(sym.bin_offsets.back());
  Tuple* expanded = nullptr;
  NarrowStream ns;
  if (narrow) {
    ns = workspace.acquire_narrow(buf_len);
    workspace.place_bins(sym.bin_offsets, sym.bin_home, sym.format);
    pb_expand_narrow<S>(a, b, sym, plan.cfg, ns.keys, ns.vals);
  } else {
    expanded = workspace.acquire(buf_len);
    workspace.place_bins(sym.bin_offsets, sym.bin_home, sym.format);
    pb_expand<S>(a, b, sym, plan.cfg, expanded);
  }
  tm.expand.seconds = timer.elapsed_s();
  // Table III: read both inputs once (at the paper's wide COO cost), write
  // flop tuples at the stream format's cost.
  tm.expand.bytes =
      static_cast<double>(kBytesPerTuple) *
          (static_cast<double>(a.nnz()) + static_cast<double>(b.nnz())) +
      bpt * static_cast<double>(sym.flop);

  // ---- sort + compress (fused per bin, timed separately; S::add) ----
  // The fused mask rides here too: masked-out survivors are dropped per
  // bin right after the duplicate merge, so convert never sees them.
  timer.reset();
  const SortCompressResult sc =
      narrow ? pb_sort_compress_narrow<S>(ns.keys, ns.vals, sym.bin_offsets,
                                          sym.bin_fill, sym.layout.nbins,
                                          &workspace, mask, &sym.layout,
                                          sym.col_bits)
             : pb_sort_compress<S>(expanded, sym.bin_offsets, sym.bin_fill,
                                   sym.layout.nbins, &workspace, mask);
  const double sc_wall = timer.elapsed_s();
  // Attribute the fused loop's wall time proportionally to the measured
  // per-thread busy times (their ratio is exact; the split of idle time is
  // the approximation).
  const double busy = sc.sort_seconds + sc.compress_seconds;
  const double sort_share = busy > 0 ? sc.sort_seconds / busy : 0.5;
  tm.sort.seconds = sc_wall * sort_share;
  tm.compress.seconds = sc_wall * (1.0 - sort_share);
  // Table III: the sort streams the bin in (shuffles are in-cache); the
  // compress writes every merged tuple — including the ones the mask then
  // discards in-cache (reads are in-cache).
  tm.sort.bytes = bpt * static_cast<double>(sym.flop);
  nnz_t nnz_c = 0;
  for (const nnz_t m : sc.merged) nnz_c += m;
  tm.nnz_c = nnz_c;
  tm.mask_dropped = sc.mask_dropped;
  tm.compress.bytes = bpt * static_cast<double>(nnz_c + sc.mask_dropped);

  // ---- convert to CSR (semiring-independent) ----
  timer.reset();
  result.c = narrow
                 ? pb_build_csr_narrow(ns.keys, ns.vals, sym.bin_offsets,
                                       sc.merged, sym.layout, sym.col_bits,
                                       a.nrows, b.ncols)
                 : pb_build_csr(expanded, sym.bin_offsets, sc.merged,
                                a.nrows, b.ncols);
  tm.convert.seconds = timer.elapsed_s();
  // Reads the merged tuples, writes colids+vals and two rowptr passes.
  tm.convert.bytes =
      (bpt + static_cast<double>(sizeof(index_t) + sizeof(value_t))) *
          static_cast<double>(nnz_c) +
      2.0 * static_cast<double>(sizeof(nnz_t)) * static_cast<double>(a.nrows);

  return result;
}

}  // namespace pbs::pb
