// Bin layouts: the propagation-blocking partition of output rows.
//
// A layout answers one question — which global bin does output row r's
// tuples propagate to? — for the three policies of pb_config.hpp.  The
// range layout is the default: bins own contiguous, power-of-two-aligned
// row ranges, so `binid` is a shift, bins are globally row-ordered (CSR
// conversion becomes a streaming copy) and the upper row bits inside a bin
// are constant (the radix sort's byte-skipping then reproduces the paper's
// "4-byte key, four passes" behaviour automatically).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "pb/pb_config.hpp"

namespace pbs::pb {

struct BinLayout {
  BinPolicy policy = BinPolicy::kRange;
  int nbins = 1;
  int shift = 0;            ///< range: binid = row >> shift
  std::uint32_t mask = 0;   ///< modulo: binid = row & mask (nbins power of 2)
  std::vector<index_t> bounds;  ///< adaptive: bin b = rows [bounds[b], bounds[b+1])

  [[nodiscard]] int binid(index_t row) const;

  /// Width of a bin's contiguous row range.  Only range layouts have one
  /// (modulo bins are strided, adaptive bins vary), so every other policy
  /// reports 0.
  [[nodiscard]] index_t rows_per_bin() const {
    return policy == BinPolicy::kRange ? index_t{1} << shift : index_t{0};
  }
};

/// The paper's bin-count rule (Algorithm 3 line 6): enough bins that one
/// bin's tuples occupy at most half of L2 during in-cache sort/compress.
int auto_nbins(nnz_t flop, std::size_t l2_bytes);

/// Range layout covering `nrows` rows with ~`nbins_target` bins.
BinLayout make_range_layout(index_t nrows, int nbins_target);

/// Modulo layout with next_pow2(nbins_target) bins.
BinLayout make_modulo_layout(index_t nrows, int nbins_target);

/// Adaptive layout: greedy row-range partition where each bin's flop stays
/// below ~flop_total/nbins_target (heavy single rows get their own bin).
BinLayout make_adaptive_layout(std::span<const nnz_t> row_flops,
                               int nbins_target);

}  // namespace pbs::pb
