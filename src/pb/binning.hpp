// Bin layouts: the propagation-blocking partition of output rows.
//
// A layout answers one question — which global bin does output row r's
// tuples propagate to? — for the three policies of pb_config.hpp.  The
// range layout is the default: bins own contiguous, power-of-two-aligned
// row ranges, so `binid` is a shift, bins are globally row-ordered (CSR
// conversion becomes a streaming copy) and the upper row bits inside a bin
// are constant (the radix sort's byte-skipping then reproduces the paper's
// "4-byte key, four passes" behaviour automatically).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "pb/pb_config.hpp"

namespace pbs::pb {

struct BinLayout {
  BinPolicy policy = BinPolicy::kRange;
  int nbins = 1;
  int shift = 0;            ///< range: binid = row >> shift
  std::uint32_t mask = 0;   ///< modulo: binid = row & mask (nbins power of 2)
  std::vector<index_t> bounds;  ///< adaptive: bin b = rows [bounds[b], bounds[b+1])

  [[nodiscard]] int binid(index_t row) const;

  /// Width of a bin's contiguous row range.  Only range layouts have one
  /// (modulo bins are strided, adaptive bins vary), so every other policy
  /// reports 0.
  [[nodiscard]] index_t rows_per_bin() const {
    return policy == BinPolicy::kRange ? index_t{1} << shift : index_t{0};
  }

  /// log2(nbins) for the modulo policy (nbins is a power of two there).
  [[nodiscard]] int modulo_shift() const {
    return ceil_log2(static_cast<std::uint64_t>(mask) + 1);
  }

  /// Bin-relative row id: a bijection [0, bin_width) <-> the rows of
  /// `bin`, monotone in the rowid so sorting by it preserves row order
  /// within the bin.  This is the row part of the narrow tuple key
  /// (pb/tuple.hpp): range bins strip the constant high bits, modulo bins
  /// strip the constant low (residue) bits, adaptive bins rebase on their
  /// first row.
  [[nodiscard]] index_t local_row(int bin, index_t row) const {
    switch (policy) {
      case BinPolicy::kRange:
        // Unsigned mask arithmetic: shift may be as large as 31.
        return static_cast<index_t>(
            static_cast<std::uint32_t>(row) &
            ((std::uint32_t{1} << shift) - 1u));
      case BinPolicy::kModulo:
        return row >> modulo_shift();
      case BinPolicy::kAdaptive:
        return row - bounds[static_cast<std::size_t>(bin)];
    }
    return 0;
  }

  /// Inverse of local_row for the same bin.
  [[nodiscard]] index_t global_row(int bin, index_t local) const {
    switch (policy) {
      case BinPolicy::kRange:
        return (static_cast<index_t>(bin) << shift) | local;
      case BinPolicy::kModulo:
        return (local << modulo_shift()) | static_cast<index_t>(bin);
      case BinPolicy::kAdaptive:
        return bounds[static_cast<std::size_t>(bin)] + local;
    }
    return 0;
  }

  /// Bits needed to hold any bin's local_row values, given the matrix row
  /// count — the row half of the narrow-format fit test.
  [[nodiscard]] int local_row_bits(index_t nrows) const;

  /// Visits every row `bin` owns, in ascending global-row order — the same
  /// order the bin's sorted tuples carry their rows in (local_row is
  /// monotone in the rowid for every policy), which is what lets the
  /// accumulate builders merge a bin's tuple stream against C's rows in
  /// one forward sweep.  `nrows` bounds the walk for the range layout
  /// (whose top bin may extend past the matrix) and the modulo layout
  /// (whose bins stride the whole row space).
  template <typename Fn>
  void for_each_row(int bin, index_t nrows, Fn&& fn) const {
    switch (policy) {
      case BinPolicy::kRange: {
        const index_t lo = static_cast<index_t>(bin) << shift;
        const index_t hi =
            std::min<index_t>(nrows, lo + (index_t{1} << shift));
        for (index_t r = lo; r < hi; ++r) fn(r);
        return;
      }
      case BinPolicy::kModulo: {
        const auto stride = static_cast<index_t>(mask) + 1;
        for (index_t r = static_cast<index_t>(bin); r < nrows; r += stride) {
          fn(r);
        }
        return;
      }
      case BinPolicy::kAdaptive: {
        const index_t lo = bounds[static_cast<std::size_t>(bin)];
        const index_t hi =
            std::min<index_t>(nrows, bounds[static_cast<std::size_t>(bin) + 1]);
        for (index_t r = lo; r < hi; ++r) fn(r);
        return;
      }
    }
  }
};

/// The paper's bin-count rule (Algorithm 3 line 6): enough bins that one
/// bin's tuples occupy at most half of L2 during in-cache sort/compress.
int auto_nbins(nnz_t flop, std::size_t l2_bytes);

/// Range layout covering `nrows` rows with ~`nbins_target` bins.
BinLayout make_range_layout(index_t nrows, int nbins_target);

/// Modulo layout with next_pow2(nbins_target) bins.
BinLayout make_modulo_layout(index_t nrows, int nbins_target);

/// Adaptive layout: greedy row-range partition where each bin's flop stays
/// below ~flop_total/nbins_target (heavy single rows get their own bin).
BinLayout make_adaptive_layout(std::span<const nnz_t> row_flops,
                               int nbins_target);

}  // namespace pbs::pb
