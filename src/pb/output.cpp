#include "pb/output.hpp"

#include "common/prefix_sum.hpp"

namespace pbs::pb {

namespace {

// Inverse of the expand path's fast_local_row: rebuild the global rowid
// from (bin, local) under each policy.  The modulo shift is hoisted by
// callers so the per-tuple cost is a plain shift/or (or an indexed add).
index_t narrow_global_row(const BinLayout& layout, int mod_shift, int bin,
                          index_t local) {
  switch (layout.policy) {
    case BinPolicy::kRange:
      return (static_cast<index_t>(bin) << layout.shift) | local;
    case BinPolicy::kModulo:
      return (local << mod_shift) | static_cast<index_t>(bin);
    case BinPolicy::kAdaptive:
      return layout.bounds[static_cast<std::size_t>(bin)] + local;
  }
  return index_t{0};
}

}  // namespace

void pb_count_bin(const Tuple* bin_tuples, nnz_t merged, nnz_t* rowptr) {
  for (nnz_t i = 0; i < merged; ++i) {
    ++rowptr[static_cast<std::size_t>(key_row(bin_tuples[i].key)) + 1];
  }
}

void pb_scatter_bin(const Tuple* bin_tuples, nnz_t merged,
                    const nnz_t* rowptr, index_t* colids, value_t* vals) {
  // Within a bin tuples are (row, col)-sorted, so every row appears as one
  // contiguous run; its j-th element lands at rowptr[row] + j.
  nnz_t i = 0;
  while (i < merged) {
    const index_t row = key_row(bin_tuples[i].key);
    nnz_t dst = rowptr[row];
    while (i < merged && key_row(bin_tuples[i].key) == row) {
      colids[static_cast<std::size_t>(dst)] = key_col(bin_tuples[i].key);
      vals[static_cast<std::size_t>(dst)] = bin_tuples[i].val;
      ++dst;
      ++i;
    }
  }
}

void pb_count_bin_narrow(const narrow_key_t* bin_keys, nnz_t merged, int bin,
                         const BinLayout& layout, int col_bits,
                         nnz_t* rowptr) {
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  for (nnz_t i = 0; i < merged; ++i) {
    const index_t row = narrow_global_row(
        layout, mod_shift, bin, narrow_key_local_row(bin_keys[i], col_bits));
    ++rowptr[static_cast<std::size_t>(row) + 1];
  }
}

void pb_scatter_bin_narrow(const narrow_key_t* bin_keys,
                           const value_t* bin_vals, nnz_t merged, int bin,
                           const BinLayout& layout, int col_bits,
                           const nnz_t* rowptr, index_t* colids,
                           value_t* vals) {
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  const narrow_key_t col_mask = (narrow_key_t{1} << col_bits) - 1u;
  // Ascending narrow keys are ascending (row, col) — local_row is monotone
  // in the rowid for every policy — so rows appear as contiguous runs
  // exactly as in the wide path.
  nnz_t i = 0;
  while (i < merged) {
    const index_t local = narrow_key_local_row(bin_keys[i], col_bits);
    const index_t row = narrow_global_row(layout, mod_shift, bin, local);
    nnz_t dst = rowptr[row];
    while (i < merged && narrow_key_local_row(bin_keys[i], col_bits) == local) {
      colids[static_cast<std::size_t>(dst)] =
          static_cast<index_t>(bin_keys[i] & col_mask);
      vals[static_cast<std::size_t>(dst)] = bin_vals[i];
      ++dst;
      ++i;
    }
  }
}

mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Pass 1: per-row counts.  Distinct bins never contain the same row, so
  // bins can histogram into the shared rowptr array without atomics.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    pb_count_bin(tuples + offsets[static_cast<std::size_t>(bin)],
                 merged[static_cast<std::size_t>(bin)], out.rowptr.data());
  }

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

  // Pass 2: scatter.  Rows being bin-exclusive makes the writes race-free.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    pb_scatter_bin(tuples + offsets[static_cast<std::size_t>(bin)],
                   merged[static_cast<std::size_t>(bin)], out.rowptr.data(),
                   out.colids.data(), out.vals.data());
  }

  return out;
}

mtx::CsrMatrix pb_build_csr_narrow(const narrow_key_t* keys,
                                   const value_t* vals,
                                   std::span<const nnz_t> offsets,
                                   std::span<const nnz_t> merged,
                                   const BinLayout& layout, int col_bits,
                                   index_t nrows, index_t ncols) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Pass 1: per-row counts from the key array alone — the narrow format's
  // cheapest pass: 4 bytes per surviving tuple.  Same no-atomics argument
  // as the wide path: bins never share a row.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    pb_count_bin_narrow(keys + offsets[static_cast<std::size_t>(bin)],
                        merged[static_cast<std::size_t>(bin)], bin, layout,
                        col_bits, out.rowptr.data());
  }

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const nnz_t off = offsets[static_cast<std::size_t>(bin)];
    pb_scatter_bin_narrow(keys + off, vals + off,
                          merged[static_cast<std::size_t>(bin)], bin, layout,
                          col_bits, out.rowptr.data(), out.colids.data(),
                          out.vals.data());
  }

  return out;
}

}  // namespace pbs::pb
