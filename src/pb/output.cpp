#include "pb/output.hpp"

#include "common/prefix_sum.hpp"

namespace pbs::pb {

mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Pass 1: per-row counts.  Distinct bins never contain the same row, so
  // bins can histogram into the shared rowptr array without atomics.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const Tuple* t = tuples + offsets[static_cast<std::size_t>(bin)];
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    for (nnz_t i = 0; i < len; ++i) {
      ++out.rowptr[static_cast<std::size_t>(key_row(t[i].key)) + 1];
    }
  }

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

  // Pass 2: scatter.  Within a bin tuples are (row, col)-sorted, so every
  // row appears as one contiguous run; its j-th element lands at
  // rowptr[row] + j.  Rows being bin-exclusive makes this write race-free.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const Tuple* t = tuples + offsets[static_cast<std::size_t>(bin)];
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    nnz_t i = 0;
    while (i < len) {
      const index_t row = key_row(t[i].key);
      nnz_t dst = out.rowptr[row];
      while (i < len && key_row(t[i].key) == row) {
        out.colids[static_cast<std::size_t>(dst)] = key_col(t[i].key);
        out.vals[static_cast<std::size_t>(dst)] = t[i].val;
        ++dst;
        ++i;
      }
    }
  }

  return out;
}

mtx::CsrMatrix pb_build_csr_narrow(const narrow_key_t* keys,
                                   const value_t* vals,
                                   std::span<const nnz_t> offsets,
                                   std::span<const nnz_t> merged,
                                   const BinLayout& layout, int col_bits,
                                   index_t nrows, index_t ncols) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Hoisted modulo shift so global_row in the per-tuple loops below is a
  // plain shift, mirroring the expand path's fast_local_row.
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  auto global_row = [&](int bin, index_t local) {
    switch (layout.policy) {
      case BinPolicy::kRange:
        return (static_cast<index_t>(bin) << layout.shift) | local;
      case BinPolicy::kModulo:
        return (local << mod_shift) | static_cast<index_t>(bin);
      case BinPolicy::kAdaptive:
        return layout.bounds[static_cast<std::size_t>(bin)] + local;
    }
    return index_t{0};
  };

  // Pass 1: per-row counts from the key array alone — the narrow format's
  // cheapest pass: 4 bytes per surviving tuple.  Same no-atomics argument
  // as the wide path: bins never share a row.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const narrow_key_t* k = keys + offsets[static_cast<std::size_t>(bin)];
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    for (nnz_t i = 0; i < len; ++i) {
      const index_t row =
          global_row(bin, narrow_key_local_row(k[i], col_bits));
      ++out.rowptr[static_cast<std::size_t>(row) + 1];
    }
  }

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

  // Pass 2: scatter.  Within a bin ascending narrow keys are ascending
  // (row, col) — local_row is monotone in the rowid for every policy — so
  // rows appear as contiguous runs exactly as in the wide path.
  const narrow_key_t col_mask =
      (narrow_key_t{1} << col_bits) - 1u;
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const nnz_t off = offsets[static_cast<std::size_t>(bin)];
    const narrow_key_t* k = keys + off;
    const value_t* v = vals + off;
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    nnz_t i = 0;
    while (i < len) {
      const index_t local = narrow_key_local_row(k[i], col_bits);
      const index_t row = global_row(bin, local);
      nnz_t dst = out.rowptr[row];
      while (i < len && narrow_key_local_row(k[i], col_bits) == local) {
        out.colids[static_cast<std::size_t>(dst)] =
            static_cast<index_t>(k[i] & col_mask);
        out.vals[static_cast<std::size_t>(dst)] = v[i];
        ++dst;
        ++i;
      }
    }
  }

  return out;
}

}  // namespace pbs::pb
