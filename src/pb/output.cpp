#include "pb/output.hpp"

#include "common/cancel.hpp"
#include "common/prefix_sum.hpp"

namespace pbs::pb {

namespace {

// Inverse of the expand path's fast_local_row: rebuild the global rowid
// from (bin, local) under each policy.  The modulo shift is hoisted by
// callers so the per-tuple cost is a plain shift/or (or an indexed add).
index_t narrow_global_row(const BinLayout& layout, int mod_shift, int bin,
                          index_t local) {
  switch (layout.policy) {
    case BinPolicy::kRange:
      return (static_cast<index_t>(bin) << layout.shift) | local;
    case BinPolicy::kModulo:
      return (local << mod_shift) | static_cast<index_t>(bin);
    case BinPolicy::kAdaptive:
      return layout.bounds[static_cast<std::size_t>(bin)] + local;
  }
  return index_t{0};
}

// Shared body of the narrow scatters: the value lane differs only in its
// element width (f64, or f32 widened/copied), so one template serves the
// narrow, narrow-f32 and native-f32 paths.
template <typename VIn, typename VOut>
void scatter_bin_narrow_any(const narrow_key_t* bin_keys, const VIn* bin_vals,
                            nnz_t merged, int bin, const BinLayout& layout,
                            int col_bits, const nnz_t* rowptr, index_t* colids,
                            VOut* vals) {
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  const narrow_key_t col_mask = (narrow_key_t{1} << col_bits) - 1u;
  // Ascending narrow keys are ascending (row, col) — local_row is monotone
  // in the rowid for every policy — so rows appear as contiguous runs
  // exactly as in the wide path.
  nnz_t i = 0;
  while (i < merged) {
    const index_t local = narrow_key_local_row(bin_keys[i], col_bits);
    const index_t row = narrow_global_row(layout, mod_shift, bin, local);
    nnz_t dst = rowptr[row];
    while (i < merged && narrow_key_local_row(bin_keys[i], col_bits) == local) {
      colids[static_cast<std::size_t>(dst)] =
          static_cast<index_t>(bin_keys[i] & col_mask);
      vals[static_cast<std::size_t>(dst)] = static_cast<VOut>(bin_vals[i]);
      ++dst;
      ++i;
    }
  }
}

// Shared two-pass skeleton of the narrow CSR builders, parameterized the
// same way (the count pass is identical — it reads only the keys).
template <typename VIn, typename VOut>
void build_narrow_any(const narrow_key_t* keys, const VIn* vals_in,
                      std::span<const nnz_t> offsets,
                      std::span<const nnz_t> merged, const BinLayout& layout,
                      int col_bits, index_t nrows, nnz_t* rowptr,
                      std::vector<index_t>& colids, std::vector<VOut>& vals,
                      const CancelToken* cancel) {
  const auto nbins = static_cast<int>(merged.size());

  // Pass 1: per-row counts from the key array alone — the narrow format's
  // cheapest pass: 4 bytes per surviving tuple.  Same no-atomics argument
  // as the wide path: bins never share a row.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    pb_count_bin_narrow(keys + offsets[static_cast<std::size_t>(bin)],
                        merged[static_cast<std::size_t>(bin)], bin, layout,
                        col_bits, rowptr);
  }
  throw_if_stopped(cancel);

  const nnz_t total =
      counts_to_rowptr(rowptr, static_cast<std::size_t>(nrows));
  colids.resize(static_cast<std::size_t>(total));
  vals.resize(static_cast<std::size_t>(total));

#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    const nnz_t off = offsets[static_cast<std::size_t>(bin)];
    scatter_bin_narrow_any(keys + off, vals_in + off,
                           merged[static_cast<std::size_t>(bin)], bin, layout,
                           col_bits, rowptr, colids.data(), vals.data());
  }
  throw_if_stopped(cancel);
}

}  // namespace

void pb_count_bin(const Tuple* bin_tuples, nnz_t merged, nnz_t* rowptr) {
  for (nnz_t i = 0; i < merged; ++i) {
    ++rowptr[static_cast<std::size_t>(key_row(bin_tuples[i].key)) + 1];
  }
}

void pb_scatter_bin(const Tuple* bin_tuples, nnz_t merged,
                    const nnz_t* rowptr, index_t* colids, value_t* vals) {
  // Within a bin tuples are (row, col)-sorted, so every row appears as one
  // contiguous run; its j-th element lands at rowptr[row] + j.
  nnz_t i = 0;
  while (i < merged) {
    const index_t row = key_row(bin_tuples[i].key);
    nnz_t dst = rowptr[row];
    while (i < merged && key_row(bin_tuples[i].key) == row) {
      colids[static_cast<std::size_t>(dst)] = key_col(bin_tuples[i].key);
      vals[static_cast<std::size_t>(dst)] = bin_tuples[i].val;
      ++dst;
      ++i;
    }
  }
}

void pb_count_bin_narrow(const narrow_key_t* bin_keys, nnz_t merged, int bin,
                         const BinLayout& layout, int col_bits,
                         nnz_t* rowptr) {
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  for (nnz_t i = 0; i < merged; ++i) {
    const index_t row = narrow_global_row(
        layout, mod_shift, bin, narrow_key_local_row(bin_keys[i], col_bits));
    ++rowptr[static_cast<std::size_t>(row) + 1];
  }
}

void pb_scatter_bin_narrow(const narrow_key_t* bin_keys,
                           const value_t* bin_vals, nnz_t merged, int bin,
                           const BinLayout& layout, int col_bits,
                           const nnz_t* rowptr, index_t* colids,
                           value_t* vals) {
  scatter_bin_narrow_any(bin_keys, bin_vals, merged, bin, layout, col_bits,
                         rowptr, colids, vals);
}

void pb_scatter_bin_narrow_f32(const narrow_key_t* bin_keys,
                               const f32_val_t* bin_vals, nnz_t merged,
                               int bin, const BinLayout& layout, int col_bits,
                               const nnz_t* rowptr, index_t* colids,
                               value_t* vals) {
  scatter_bin_narrow_any(bin_keys, bin_vals, merged, bin, layout, col_bits,
                         rowptr, colids, vals);
}

void pb_count_bin_keyonly(const wide_key_t* bin_keys, nnz_t merged,
                          nnz_t* rowptr) {
  for (nnz_t i = 0; i < merged; ++i) {
    ++rowptr[static_cast<std::size_t>(key_row(bin_keys[i])) + 1];
  }
}

void pb_scatter_bin_keyonly(const wide_key_t* bin_keys, nnz_t merged,
                            const nnz_t* rowptr, index_t* colids,
                            value_t* vals, value_t present) {
  // Same contiguous-row-run walk as the wide scatter; the value store is a
  // constant, the format's whole point.
  nnz_t i = 0;
  while (i < merged) {
    const index_t row = key_row(bin_keys[i]);
    nnz_t dst = rowptr[row];
    while (i < merged && key_row(bin_keys[i]) == row) {
      colids[static_cast<std::size_t>(dst)] = key_col(bin_keys[i]);
      vals[static_cast<std::size_t>(dst)] = present;
      ++dst;
      ++i;
    }
  }
}

mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols, const CancelToken* cancel) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Pass 1: per-row counts.  Distinct bins never contain the same row, so
  // bins can histogram into the shared rowptr array without atomics.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    pb_count_bin(tuples + offsets[static_cast<std::size_t>(bin)],
                 merged[static_cast<std::size_t>(bin)], out.rowptr.data());
  }
  throw_if_stopped(cancel);

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

  // Pass 2: scatter.  Rows being bin-exclusive makes the writes race-free.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    pb_scatter_bin(tuples + offsets[static_cast<std::size_t>(bin)],
                   merged[static_cast<std::size_t>(bin)], out.rowptr.data(),
                   out.colids.data(), out.vals.data());
  }
  throw_if_stopped(cancel);

  return out;
}

mtx::CsrMatrix pb_build_csr_narrow(const narrow_key_t* keys,
                                   const value_t* vals,
                                   std::span<const nnz_t> offsets,
                                   std::span<const nnz_t> merged,
                                   const BinLayout& layout, int col_bits,
                                   index_t nrows, index_t ncols,
                                   const CancelToken* cancel) {
  mtx::CsrMatrix out(nrows, ncols);
  build_narrow_any(keys, vals, offsets, merged, layout, col_bits, nrows,
                   out.rowptr.data(), out.colids, out.vals, cancel);
  return out;
}

mtx::CsrMatrix pb_build_csr_narrow_f32(const narrow_key_t* keys,
                                       const f32_val_t* vals,
                                       std::span<const nnz_t> offsets,
                                       std::span<const nnz_t> merged,
                                       const BinLayout& layout, int col_bits,
                                       index_t nrows, index_t ncols,
                                       const CancelToken* cancel) {
  mtx::CsrMatrix out(nrows, ncols);
  build_narrow_any(keys, vals, offsets, merged, layout, col_bits, nrows,
                   out.rowptr.data(), out.colids, out.vals, cancel);
  return out;
}

CsrF32 pb_build_csr_narrow_f32_native(const narrow_key_t* keys,
                                      const f32_val_t* vals,
                                      std::span<const nnz_t> offsets,
                                      std::span<const nnz_t> merged,
                                      const BinLayout& layout, int col_bits,
                                      index_t nrows, index_t ncols) {
  CsrF32 out;
  out.nrows = nrows;
  out.ncols = ncols;
  out.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  build_narrow_any(keys, vals, offsets, merged, layout, col_bits, nrows,
                   out.rowptr.data(), out.colids, out.vals, nullptr);
  return out;
}

mtx::CsrMatrix pb_build_csr_keyonly(const wide_key_t* keys,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> merged,
                                    index_t nrows, index_t ncols,
                                    value_t present,
                                    const CancelToken* cancel) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Same two barrier-separated sweeps as the wide builder; the count pass
  // reads 8 B per surviving tuple and the scatter synthesizes values.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    pb_count_bin_keyonly(keys + offsets[static_cast<std::size_t>(bin)],
                         merged[static_cast<std::size_t>(bin)],
                         out.rowptr.data());
  }
  throw_if_stopped(cancel);

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    pb_scatter_bin_keyonly(keys + offsets[static_cast<std::size_t>(bin)],
                           merged[static_cast<std::size_t>(bin)],
                           out.rowptr.data(), out.colids.data(),
                           out.vals.data(), present);
  }
  throw_if_stopped(cancel);

  return out;
}

}  // namespace pbs::pb
