#include "pb/output.hpp"

#include "common/prefix_sum.hpp"

namespace pbs::pb {

mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols) {
  const auto nbins = static_cast<int>(merged.size());
  mtx::CsrMatrix out(nrows, ncols);

  // Pass 1: per-row counts.  Distinct bins never contain the same row, so
  // bins can histogram into the shared rowptr array without atomics.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const Tuple* t = tuples + offsets[static_cast<std::size_t>(bin)];
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    for (nnz_t i = 0; i < len; ++i) {
      ++out.rowptr[static_cast<std::size_t>(key_row(t[i].key)) + 1];
    }
  }

  const nnz_t total =
      counts_to_rowptr(out.rowptr.data(), static_cast<std::size_t>(nrows));
  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

  // Pass 2: scatter.  Within a bin tuples are (row, col)-sorted, so every
  // row appears as one contiguous run; its j-th element lands at
  // rowptr[row] + j.  Rows being bin-exclusive makes this write race-free.
#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    const Tuple* t = tuples + offsets[static_cast<std::size_t>(bin)];
    const nnz_t len = merged[static_cast<std::size_t>(bin)];
    nnz_t i = 0;
    while (i < len) {
      const index_t row = key_row(t[i].key);
      nnz_t dst = out.rowptr[row];
      while (i < len && key_row(t[i].key) == row) {
        out.colids[static_cast<std::size_t>(dst)] = key_col(t[i].key);
        out.vals[static_cast<std::size_t>(dst)] = t[i].val;
        ++dst;
        ++i;
      }
    }
  }

  return out;
}

}  // namespace pbs::pb
