#include "pb/plan_impl.hpp"

#include "common/cache_info.hpp"
#include "spgemm/op.hpp"

namespace pbs::pb {

StructureFingerprint StructureFingerprint::of(const mtx::CscMatrix& a,
                                              const mtx::CsrMatrix& b) {
  return of(a, b, pb_count_flop(a, b));  // throws on dimension mismatch
}

StructureFingerprint StructureFingerprint::of(const mtx::CscMatrix& a,
                                              const mtx::CsrMatrix& b,
                                              nnz_t flop) {
  StructureFingerprint fp;
  fp.a_rows = a.nrows;
  fp.a_cols = a.ncols;
  fp.b_rows = b.nrows;
  fp.b_cols = b.ncols;
  fp.a_nnz = a.nnz();
  fp.b_nnz = b.nnz();
  fp.flop = flop;
  return fp;
}

PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg) {
  return pb_plan_build(a, b, cfg, SymbolicHints{});
}

PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg, const SymbolicHints& hints) {
  PbPlan plan;
  Timer timer;
  plan.sym = pb_symbolic(a, b, cfg, hints);  // throws on dimension mismatch
  plan.cfg = cfg;
  plan.l2_bytes = cfg.l2_bytes != 0 ? cfg.l2_bytes : cache_info().l2_bytes;
  plan.fingerprint = StructureFingerprint::of(a, b, plan.sym.flop);
  plan.symbolic.seconds = timer.elapsed_s();
  plan.symbolic.bytes = plan.sym.modeled_bytes;
  return plan;
}

template PbResult pb_execute<PlusTimes>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&, const PbPlan&,
                                        PbWorkspace&, bool, const MaskSpec&);
template PbResult pb_execute<MinPlus>(const mtx::CscMatrix&,
                                      const mtx::CsrMatrix&, const PbPlan&,
                                      PbWorkspace&, bool, const MaskSpec&);
template PbResult pb_execute<MaxMin>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbPlan&,
                                     PbWorkspace&, bool, const MaskSpec&);
template PbResult pb_execute<BoolOrAnd>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&, const PbPlan&,
                                        PbWorkspace&, bool, const MaskSpec&);
// The runtime-semiring bridge: one more instantiation whose scalar ops
// indirect through the active RuntimeSemiring (spgemm/op.hpp).
template PbResult pb_execute<DynSemiring>(const mtx::CscMatrix&,
                                          const mtx::CsrMatrix&,
                                          const PbPlan&, PbWorkspace&, bool,
                                          const MaskSpec&);

PbResult pb_execute_named(const std::string& semiring, const mtx::CscMatrix& a,
                          const mtx::CsrMatrix& b, const PbPlan& plan,
                          PbWorkspace& workspace, bool check_fingerprint,
                          const MaskSpec& mask) {
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    return pb_execute<S>(a, b, plan, workspace, check_fingerprint, mask);
  });
}

}  // namespace pbs::pb
