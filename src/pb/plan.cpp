#include "pb/plan_impl.hpp"

#include "common/cache_info.hpp"
#include "spgemm/op.hpp"

namespace pbs::pb {

namespace {

// splitmix64's finalizer: cheap, well-distributed, and constexpr-friendly.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Folds ≤64 strided samples of `arr` (entry value XOR its position, under
// a per-array salt) plus the exact last entry into `h`.  O(1) reads per
// array keeps fingerprinting far cheaper than the flop pass it rides on.
template <typename T>
std::uint64_t hash_samples(std::uint64_t h, const std::vector<T>& arr,
                           std::uint64_t salt) {
  const std::size_t n = arr.size();
  h = mix64(h ^ salt ^ static_cast<std::uint64_t>(n));
  if (n == 0) return h;
  const std::size_t stride = n > 64 ? n / 64 : 1;
  for (std::size_t i = 0; i < n; i += stride) {
    h = mix64(h ^ salt ^ (static_cast<std::uint64_t>(arr[i]) * 0x100000001b3ull + i));
  }
  return mix64(h ^ salt ^ static_cast<std::uint64_t>(arr[n - 1]));
}

std::uint64_t structure_hash_of(const mtx::CscMatrix& a,
                                const mtx::CsrMatrix& b) {
  std::uint64_t h = 0x243f6a8885a308d3ull;  // pi, for want of a zero seed
  h = hash_samples(h, a.colptr, 0x8a91a6d40bf42040ull);
  h = hash_samples(h, a.rowids, 0xc4ceb9fe1a85ec53ull);
  h = hash_samples(h, b.rowptr, 0xff51afd7ed558ccdull);
  h = hash_samples(h, b.colids, 0x2545f4914f6cdd1dull);
  return h;
}

}  // namespace

StructureFingerprint StructureFingerprint::of(const mtx::CscMatrix& a,
                                              const mtx::CsrMatrix& b) {
  return of(a, b, pb_count_flop(a, b));  // throws on dimension mismatch
}

StructureFingerprint StructureFingerprint::of(const mtx::CscMatrix& a,
                                              const mtx::CsrMatrix& b,
                                              nnz_t flop) {
  StructureFingerprint fp;
  fp.a_rows = a.nrows;
  fp.a_cols = a.ncols;
  fp.b_rows = b.nrows;
  fp.b_cols = b.ncols;
  fp.a_nnz = a.nnz();
  fp.b_nnz = b.nnz();
  fp.flop = flop;
  fp.structure_hash = structure_hash_of(a, b);
  return fp;
}

PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg) {
  return pb_plan_build(a, b, cfg, SymbolicHints{});
}

PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg, const SymbolicHints& hints) {
  FaultInjector::at(FaultPoint::kPlanBuild);
  PbPlan plan;
  Timer timer;
  plan.sym = pb_symbolic(a, b, cfg, hints);  // throws on dimension mismatch
  plan.cfg = cfg;
  // A cancel token is per-run state; the plan outlives any run, so never
  // capture a live token (PbConfig::cancel contract).
  plan.cfg.cancel = nullptr;
  plan.l2_bytes = cfg.l2_bytes != 0 ? cfg.l2_bytes : cache_info().l2_bytes;
  plan.fingerprint = StructureFingerprint::of(a, b, plan.sym.flop);
  plan.symbolic.seconds = timer.elapsed_s();
  plan.symbolic.bytes = plan.sym.modeled_bytes;
  return plan;
}

template PbResult pb_execute<PlusTimes>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&, const PbPlan&,
                                        PbWorkspace&, bool, const MaskSpec&,
                                        const CancelToken*, const PbEpilogue&);
template PbResult pb_execute<MinPlus>(const mtx::CscMatrix&,
                                      const mtx::CsrMatrix&, const PbPlan&,
                                      PbWorkspace&, bool, const MaskSpec&,
                                      const CancelToken*, const PbEpilogue&);
template PbResult pb_execute<MaxMin>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbPlan&,
                                     PbWorkspace&, bool, const MaskSpec&,
                                     const CancelToken*, const PbEpilogue&);
template PbResult pb_execute<BoolOrAnd>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&, const PbPlan&,
                                        PbWorkspace&, bool, const MaskSpec&,
                                        const CancelToken*, const PbEpilogue&);
// The runtime-semiring bridge: one more instantiation whose scalar ops
// indirect through the active RuntimeSemiring (spgemm/op.hpp).
template PbResult pb_execute<DynSemiring>(const mtx::CscMatrix&,
                                          const mtx::CsrMatrix&,
                                          const PbPlan&, PbWorkspace&, bool,
                                          const MaskSpec&, const CancelToken*,
                                          const PbEpilogue&);

PbResult pb_execute_named(const std::string& semiring, const mtx::CscMatrix& a,
                          const mtx::CsrMatrix& b, const PbPlan& plan,
                          PbWorkspace& workspace, bool check_fingerprint,
                          const MaskSpec& mask, const CancelToken* cancel,
                          const PbEpilogue& epi) {
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    return pb_execute<S>(a, b, plan, workspace, check_fingerprint, mask,
                         cancel, epi);
  });
}

}  // namespace pbs::pb
