// PB-SpGEMM expand phase (paper Algorithm 2, lines 5-18).
//
// Performs the k outer products A(:,i) · B(i,:) and propagates each
// multiplied tuple toward its row's global bin *through a thread-private
// local bin* (paper Fig. 5): tuples accumulate in a small cache-resident
// buffer and are flushed to the global bin in one cache-line-multiple
// memcpy when it fills, so global-memory writes always use full cache
// lines.  Global bins are contiguous regions of one flop-sized allocation;
// a flush claims its destination with a relaxed atomic fetch-add.
//
// The phase is templated on the semiring: the only algebraic operation it
// performs is the scalar multiply A(r,i) ⊗ B(i,c), which becomes S::mul.
// Routing, blocking and the store policy are semiring-independent, so every
// instantiation streams memory identically.  Kernels are defined in
// expand_impl.hpp and explicitly instantiated in expand.cpp for the four
// built-in semirings; the non-template overload is the numeric (+, ×)
// entry point and keeps the pre-semiring ABI.
#pragma once

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/symbolic.hpp"
#include "pb/tuple.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs::pb {

/// Whether this run's expand phase should apply the fused output mask in
/// its scatter loop (ExpandMaskMode): forced by kOn, and under kAuto
/// engaged when the kept-side density — nnz(mask)/cells, complement-
/// flipped — is at most cfg.expand_mask_max_density.  A per-run decision:
/// the mask is run state, never plan state, so both schedule drivers call
/// this with the mask actually passed to pb_execute.
inline bool engage_expand_mask(const MaskSpec& mask, const PbConfig& cfg,
                               index_t nrows, index_t ncols) {
  if (!mask.active() || cfg.expand_mask == ExpandMaskMode::kOff) return false;
  if (cfg.expand_mask == ExpandMaskMode::kOn) return true;
  const double cells = static_cast<double>(nrows) * static_cast<double>(ncols);
  if (cells <= 0) return true;
  const double density = static_cast<double>(mask.csr->nnz()) / cells;
  const double kept = mask.complement ? 1.0 - density : density;
  return kept <= cfg.expand_mask_max_density;
}

/// Fills `out[0 .. sym.flop)` with the expanded tuples of A ⊗ B over
/// semiring S, bin by bin according to sym.bin_offsets.  `out` must have
/// room for sym.flop tuples.  Returns the number of local-bin flushes
/// (telemetry for the Fig. 6a bin-width study).
///
/// With an active `emask` the scatter loop applies the fused output mask
/// while generating: tuples whose (row, col) fails the mask polarity are
/// never multiplied, buffered or flushed (a flop reduction — the
/// ExpandMaskMode path).  Bins then hold fewer tuples than the symbolic
/// fill marks; `actual_fill` (when non-null, length layout.nbins)
/// receives each bin's generated tuple count, which downstream
/// sort/compress must use in place of sym.bin_fill.
template <typename S>
nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                const MaskSpec& emask = {}, nnz_t* actual_fill = nullptr);

/// Narrow-format expand: same routing, but writes the SoA stream — packed
/// bin-relative u32 keys to `out_keys` and values to `out_vals` (12 B per
/// tuple instead of 16; see pb/tuple.hpp).  Requires a symbolic result
/// whose bin regions were padded for the narrow format
/// (sym.format == TupleFormat::kNarrow); both arrays need room for
/// sym.bin_offsets.back() entries.
template <typename S>
nnz_t pb_expand_narrow(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                       const SymbolicResult& sym, const PbConfig& cfg,
                       narrow_key_t* out_keys, value_t* out_vals,
                       const MaskSpec& emask = {},
                       nnz_t* actual_fill = nullptr);

/// Key-only expand: writes the bare 8 B global keys — no value array
/// exists in this format, so there is no multiply and no semiring
/// parameter (legal only for value-free semirings; see pb/tuple.hpp).
/// Requires sym.format == TupleFormat::kKeyOnly; `out_keys` needs room
/// for sym.bin_offsets.back() entries.
nnz_t pb_expand_keyonly(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                        const SymbolicResult& sym, const PbConfig& cfg,
                        wide_key_t* out_keys, const MaskSpec& emask = {},
                        nnz_t* actual_fill = nullptr);

/// Narrow-f32 expand: the narrow SoA stream with a 4 B value lane (8 B per
/// tuple).  Products are computed in double and narrowed on store.
/// Requires sym.format == TupleFormat::kNarrowF32.
template <typename S>
nnz_t pb_expand_narrow_f32(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const SymbolicResult& sym, const PbConfig& cfg,
                           narrow_key_t* out_keys, f32_val_t* out_vals,
                           const MaskSpec& emask = {},
                           nnz_t* actual_fill = nullptr);

extern template nnz_t pb_expand<PlusTimes>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, Tuple*,
                                           const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand<MinPlus>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const SymbolicResult&,
                                         const PbConfig&, Tuple*,
                                         const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand<MaxMin>(const mtx::CscMatrix&,
                                        const mtx::CsrMatrix&,
                                        const SymbolicResult&,
                                        const PbConfig&, Tuple*,
                                        const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand<BoolOrAnd>(const mtx::CscMatrix&,
                                           const mtx::CsrMatrix&,
                                           const SymbolicResult&,
                                           const PbConfig&, Tuple*,
                                           const MaskSpec&, nnz_t*);

extern template nnz_t pb_expand_narrow<PlusTimes>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, value_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow<MinPlus>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, value_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow<MaxMin>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, value_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow<BoolOrAnd>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, value_t*, const MaskSpec&, nnz_t*);

extern template nnz_t pb_expand_narrow_f32<PlusTimes>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, f32_val_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow_f32<MinPlus>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, f32_val_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow_f32<MaxMin>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, f32_val_t*, const MaskSpec&, nnz_t*);
extern template nnz_t pb_expand_narrow_f32<BoolOrAnd>(
    const mtx::CscMatrix&, const mtx::CsrMatrix&, const SymbolicResult&,
    const PbConfig&, narrow_key_t*, f32_val_t*, const MaskSpec&, nnz_t*);

/// Numeric (+, ×) expand — equivalent to pb_expand<PlusTimes>.
nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                const MaskSpec& emask = {}, nnz_t* actual_fill = nullptr);

}  // namespace pbs::pb
