// PB-SpGEMM expand phase (paper Algorithm 2, lines 5-18).
//
// Performs the k outer products A(:,i) · B(i,:) and propagates each
// multiplied tuple toward its row's global bin *through a thread-private
// local bin* (paper Fig. 5): tuples accumulate in a small cache-resident
// buffer and are flushed to the global bin in one cache-line-multiple
// memcpy when it fills, so global-memory writes always use full cache
// lines.  Global bins are contiguous regions of one flop-sized allocation;
// a flush claims its destination with a relaxed atomic fetch-add.
#pragma once

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/symbolic.hpp"
#include "pb/tuple.hpp"

namespace pbs::pb {

/// Fills `out[0 .. sym.flop)` with the expanded tuples, bin by bin
/// according to sym.bin_offsets.  `out` must have room for sym.flop tuples.
/// Returns the number of local-bin flushes (telemetry for the Fig. 6a
/// bin-width study).
nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out);

}  // namespace pbs::pb
