// PB-SpGEMM plan/execute split — analyze once, execute many.
//
// The pipeline's symbolic phase (flop count, bin layout, per-bin regions)
// is semiring-independent and depends only on the *structure* of A and B,
// yet pb_spgemm re-runs it on every call.  The workloads that motivate
// PB-SpGEMM — Markov clustering, multi-source BFS, betweenness, AMG
// Galerkin products — multiply with the same structure dozens of times, so
// this header splits the pipeline FFTW-style:
//
//   PbPlan plan = pb_plan_build(a, b, cfg);   // symbolic + layout, once
//   for (...) r = pb_execute<S>(a, b, plan, workspace);
//
// pb_execute runs only expand → sort/compress → convert against the
// captured bin layout and a pooled workspace, so steady-state executions
// perform no analysis and no allocation (assertable via PbWorkspace
// stats).  A StructureFingerprint makes invalidation cheap: executions
// must pass operands whose fingerprint matches the plan's, and the
// higher-level SpGemmPlan (spgemm/plan.hpp) uses the same fingerprint to
// replan automatically when operands change shape.
//
// The fingerprint is dims + nnz + flop + a sampled structural hash.  flop
// (an O(k) pointer-array product) is sensitive to how the operands'
// structures interact; the hash mixes a bounded sample of the pointer and
// index arrays themselves, so two different sparsity patterns that happen
// to agree on every aggregate (e.g. two constant-degree random seeds of
// the same size) still fingerprint differently.  The hash reads O(1)
// entries, never values, and positions are salted — it distinguishes
// structures, not value updates, exactly matching the plan-cache
// contract.  Adversarially colliding structures remain possible — callers
// mutating structure in place must rebuild the plan explicitly.
#pragma once

#include "pb/pb_spgemm.hpp"
#include "pb/symbolic.hpp"

namespace pbs::pb {

/// Cheap structural identity of a multiplication: dimensions, nonzero
/// counts and the flop invariant (see file comment for the contract).
struct StructureFingerprint {
  index_t a_rows = 0, a_cols = 0;
  index_t b_rows = 0, b_cols = 0;
  nnz_t a_nnz = 0, b_nnz = 0;
  nnz_t flop = 0;

  /// Mix of ≤64 strided samples from each of a.colptr / a.rowids /
  /// b.rowptr / b.colids (value and position, distinct per-array salts) —
  /// the disambiguator for structures whose aggregates collide.  Depends
  /// only on sparsity structure: executions that change values alone keep
  /// the hash (the executor's value-only fast path is unaffected).
  std::uint64_t structure_hash = 0;

  /// Throws std::invalid_argument when a.ncols != b.nrows (the flop pass
  /// walks b's rows by a's column index).
  static StructureFingerprint of(const mtx::CscMatrix& a,
                                 const mtx::CsrMatrix& b);

  /// Variant for callers that already know flop(A·B) (e.g. from a
  /// symbolic run) — keeps build-time and execute-time fingerprints
  /// derived from one place.
  static StructureFingerprint of(const mtx::CscMatrix& a,
                                 const mtx::CsrMatrix& b, nnz_t flop);

  bool operator==(const StructureFingerprint&) const = default;
};

/// The reusable analysis product: everything pb_spgemm derives from the
/// operands' structure before touching values.
struct PbPlan {
  SymbolicResult sym;
  PbConfig cfg;              ///< config the plan was built with
  std::size_t l2_bytes = 0;  ///< cache size the bin count was derived from
  StructureFingerprint fingerprint;
  PhaseStats symbolic;       ///< cost of building this plan (time + bytes)

  /// True when (a, b) still matches the structure this plan was built for.
  [[nodiscard]] bool matches(const mtx::CscMatrix& a,
                             const mtx::CsrMatrix& b) const {
    return StructureFingerprint::of(a, b) == fingerprint;
  }
};

/// Runs the symbolic phase and captures its products.  Requires
/// a.ncols == b.nrows; throws std::invalid_argument otherwise.
PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg = {});

/// Variant for callers that already computed parts of the analysis
/// (typically the plan layer, whose fingerprint pass owns flop and whose
/// selection pass may own the row-flop histogram): pb_symbolic then runs
/// each O(ncols)/O(nnz) pass at most once across fingerprint + replan.
/// The hints must describe these exact operands (SymbolicHints contract).
PbPlan pb_plan_build(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                     const PbConfig& cfg, const SymbolicHints& hints);

/// Executes expand → sort/compress → convert over semiring S against a
/// previously built plan, drawing all scratch from `workspace`.  The
/// operands must match plan.fingerprint: with check_fingerprint (the
/// default) a mismatch throws std::invalid_argument — the symbolic
/// products would misroute tuples.  Callers that have just built the plan
/// from (a, b) or already verified the fingerprint themselves pass false
/// and skip the O(ncols) flop recount.  The returned telemetry's symbolic
/// phase is zero: analysis was paid at plan-build time (plan.symbolic
/// records it).
///
/// An active `mask` (SpGemmOp's fused output mask) drops tuples outside
/// (or, complemented, inside) the mask's pattern at the compress stage;
/// the drop count is returned in telemetry.mask_dropped.  The mask's
/// shape must match the product (throws std::invalid_argument otherwise);
/// its pattern may change freely between executions of one plan — only
/// structure of A and B is fingerprinted.
///
/// A non-null `cancel` token is polled at column/bin granularity through
/// every numeric phase; a fired token (or expired deadline) unwinds with
/// CancelledError/DeadlineError, leaving the plan and workspace reusable.
///
/// An active `epi` fuses the descriptor's epilogue into the run
/// (pb_config.hpp): epi.accumulate merges C's tuples during conversion
/// (bit-identical to the semiring_ewise_add post-pass, which never runs);
/// epi.post_op folds scale/prune/top-k into sort/compress.  The two are
/// mutually exclusive; a post-op on the value-free key-only format and an
/// accumulate whose shape mismatches the product throw
/// std::invalid_argument.
template <typename S>
PbResult pb_execute(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                    const PbPlan& plan, PbWorkspace& workspace,
                    bool check_fingerprint = true, const MaskSpec& mask = {},
                    const CancelToken* cancel = nullptr,
                    const PbEpilogue& epi = {});

extern template PbResult pb_execute<PlusTimes>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const PbPlan&, PbWorkspace&,
                                               bool, const MaskSpec&,
                                               const CancelToken*,
                                               const PbEpilogue&);
extern template PbResult pb_execute<MinPlus>(const mtx::CscMatrix&,
                                             const mtx::CsrMatrix&,
                                             const PbPlan&, PbWorkspace&,
                                             bool, const MaskSpec&,
                                             const CancelToken*,
                                             const PbEpilogue&);
extern template PbResult pb_execute<MaxMin>(const mtx::CscMatrix&,
                                            const mtx::CsrMatrix&,
                                            const PbPlan&, PbWorkspace&,
                                            bool, const MaskSpec&,
                                            const CancelToken*,
                                            const PbEpilogue&);
extern template PbResult pb_execute<BoolOrAnd>(const mtx::CscMatrix&,
                                               const mtx::CsrMatrix&,
                                               const PbPlan&, PbWorkspace&,
                                               bool, const MaskSpec&,
                                               const CancelToken*,
                                               const PbEpilogue&);

/// Runtime dispatch by semiring name — built-in or registered through
/// SemiringRegistry (spgemm/op.hpp); throws std::invalid_argument listing
/// the valid names on a miss.
PbResult pb_execute_named(const std::string& semiring, const mtx::CscMatrix& a,
                          const mtx::CsrMatrix& b, const PbPlan& plan,
                          PbWorkspace& workspace,
                          bool check_fingerprint = true,
                          const MaskSpec& mask = {},
                          const CancelToken* cancel = nullptr,
                          const PbEpilogue& epi = {});

}  // namespace pbs::pb
