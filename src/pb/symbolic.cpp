#include "pb/symbolic.hpp"

#include <omp.h>

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/cache_info.hpp"
#include "common/numa.hpp"
#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"

namespace pbs::pb {

namespace {

// Both flop passes walk i over a.ncols reading b's row i: mismatched
// inner dimensions must fail here, not read past b.rowptr.
void check_inner_dims(const char* fn, const mtx::CscMatrix& a,
                      const mtx::CsrMatrix& b) {
  if (a.ncols != b.nrows) {
    throw std::invalid_argument(std::string(fn) +
                                ": inner dimensions differ (" +
                                std::to_string(a.ncols) + " vs " +
                                std::to_string(b.nrows) + ")");
  }
}

}  // namespace

nnz_t pb_count_flop(const mtx::CscMatrix& a, const mtx::CsrMatrix& b) {
  check_inner_dims("pb_count_flop", a, b);
  nnz_t flop = 0;
#pragma omp parallel for reduction(+ : flop) schedule(static)
  for (index_t i = 0; i < a.ncols; ++i) {
    flop += a.col_nnz(i) * b.row_nnz(i);
  }
  return flop;
}

std::vector<nnz_t> pb_row_flops(const mtx::CscMatrix& a,
                                const mtx::CsrMatrix& b) {
  check_inner_dims("pb_row_flops", a, b);
  std::vector<nnz_t> flops(static_cast<std::size_t>(a.nrows), 0);
#pragma omp parallel for schedule(guided)
  for (index_t i = 0; i < a.ncols; ++i) {
    const nnz_t weight = b.row_nnz(i);
    if (weight == 0) continue;
    for (const index_t r : a.col_rows(i)) {
#pragma omp atomic
      flops[static_cast<std::size_t>(r)] += weight;
    }
  }
  return flops;
}

nnz_t pb_estimate_nnz_c(const mtx::CscMatrix& a, const mtx::CsrMatrix& b) {
  const std::vector<nnz_t> rf = pb_row_flops(a, b);
  return pb_estimate_nnz_c(rf, b.ncols);
}

nnz_t pb_estimate_nnz_c_masked(std::span<const nnz_t> row_flops,
                               const mtx::CsrMatrix& mask) {
  if (row_flops.size() != static_cast<std::size_t>(mask.nrows)) {
    throw std::invalid_argument(
        "pb_estimate_nnz_c_masked: mask row count (" +
        std::to_string(mask.nrows) + ") differs from the product's (" +
        std::to_string(row_flops.size()) + ")");
  }
  const double ncols = static_cast<double>(mask.ncols);
  if (ncols <= 0) return 0;
  const auto nrows = static_cast<std::int64_t>(row_flops.size());
  double estimate = 0;
#pragma omp parallel for reduction(+ : estimate) schedule(static)
  for (std::int64_t r = 0; r < nrows; ++r) {
    const auto f = static_cast<double>(row_flops[static_cast<std::size_t>(r)]);
    if (f <= 0) continue;
    const auto cap =
        static_cast<double>(mask.row_nnz(static_cast<index_t>(r)));
    if (cap <= 0) continue;
    estimate += std::min(ncols * -std::expm1(-f / ncols), cap);
  }
  return static_cast<nnz_t>(estimate + 0.5);
}

nnz_t pb_estimate_nnz_c(std::span<const nnz_t> row_flops, index_t ncols_i) {
  const double ncols = static_cast<double>(ncols_i);
  if (ncols <= 0) return 0;
  const auto nrows = static_cast<std::int64_t>(row_flops.size());
  double estimate = 0;
#pragma omp parallel for reduction(+ : estimate) schedule(static)
  for (std::int64_t r = 0; r < nrows; ++r) {
    const auto f = static_cast<double>(row_flops[static_cast<std::size_t>(r)]);
    if (f > 0) estimate += ncols * -std::expm1(-f / ncols);
  }
  return static_cast<nnz_t>(estimate + 0.5);
}

namespace {

// Per-bin flop histogram: every nonzero A(r, i) contributes nnz(B(i,:))
// tuples to row r's bin.  Per-thread histograms, reduced at the end.
std::vector<nnz_t> bin_histogram(const mtx::CscMatrix& a,
                                 const mtx::CsrMatrix& b,
                                 const BinLayout& layout) {
  const auto nbins = static_cast<std::size_t>(layout.nbins);
  const int nthreads = max_threads();
  std::vector<std::vector<nnz_t>> local(
      static_cast<std::size_t>(nthreads));

#pragma omp parallel num_threads(nthreads)
  {
    auto& hist = local[static_cast<std::size_t>(omp_get_thread_num())];
    hist.assign(nbins, 0);
#pragma omp for schedule(guided)
    for (index_t i = 0; i < a.ncols; ++i) {
      const nnz_t weight = b.row_nnz(i);
      if (weight == 0) continue;
      for (const index_t r : a.col_rows(i)) {
        hist[static_cast<std::size_t>(layout.binid(r))] += weight;
      }
    }
  }

  std::vector<nnz_t> total(nbins + 1, 0);
  for (const auto& hist : local) {
    if (hist.empty()) continue;
    for (std::size_t bin = 0; bin < nbins; ++bin) total[bin] += hist[bin];
  }
  return total;  // counts in [0, nbins), slot nbins is scan scratch
}

}  // namespace

namespace {

// Format selection.  The narrow formats fit when every bin's varying key
// bits pack into 32; key-only carries the full 64-bit global key, so it
// fits any geometry but is only legal when the caller asserted the
// semiring is value-free (cfg.value_free).  Requests are preferences:
// an illegal or unfitting request falls back (keyonly -> the kAuto
// choice, narrow/f32 -> wide); the CLI enforces strictness for explicit
// user requests before planning.
TupleFormat pick_format(const BinLayout& layout, index_t nrows,
                        int col_bits, const PbConfig& cfg) {
  const bool fits = layout.local_row_bits(nrows) + col_bits <= 32;
  switch (cfg.format) {
    case FormatPolicy::kWide:
      return TupleFormat::kWide;
    case FormatPolicy::kNarrow:
      return fits ? TupleFormat::kNarrow : TupleFormat::kWide;
    case FormatPolicy::kF32:
      return fits ? TupleFormat::kNarrowF32 : TupleFormat::kWide;
    case FormatPolicy::kKeyOnly:
    case FormatPolicy::kAuto:
      if (cfg.value_free) return TupleFormat::kKeyOnly;
      return fits ? TupleFormat::kNarrow : TupleFormat::kWide;
  }
  return TupleFormat::kWide;
}

// Value-freeness promises presence ⇒ the semiring's present-value, which
// only holds when no operand stores an explicit zero: a stored 0.0 is
// bool-false, its products must surface as stored zeros (the library
// keeps exact-zero entries structurally), so the value stream cannot be
// dropped.  One O(nnz) scan per operand guards the key-only choice.
bool has_stored_zero(const std::vector<value_t>& vals) {
  bool found = false;
  const auto n = static_cast<std::ptrdiff_t>(vals.size());
#pragma omp parallel for reduction(|| : found)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    found = found || vals[static_cast<std::size_t>(i)] == 0.0;
  }
  return found;
}

}  // namespace

SymbolicResult pb_symbolic(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const PbConfig& cfg, const SymbolicHints& hints) {
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("pb_spgemm: inner dimensions differ (" +
                                std::to_string(a.ncols) + " vs " +
                                std::to_string(b.nrows) + ")");
  }

  SymbolicResult out;
  out.flop = hints.flop >= 0 ? hints.flop : pb_count_flop(a, b);

  const std::size_t l2 = cfg.l2_bytes != 0 ? cfg.l2_bytes : cache_info().l2_bytes;
  const int target = cfg.nbins > 0 ? cfg.nbins : auto_nbins(out.flop, l2);

  switch (cfg.policy) {
    case BinPolicy::kRange:
      out.layout = make_range_layout(a.nrows, target);
      break;
    case BinPolicy::kModulo:
      out.layout = make_modulo_layout(a.nrows, target);
      break;
    case BinPolicy::kAdaptive: {
      if (hints.row_flops.size() == static_cast<std::size_t>(a.nrows)) {
        out.layout = make_adaptive_layout(hints.row_flops, target);
      } else {
        const std::vector<nnz_t> rf = pb_row_flops(a, b);
        out.layout = make_adaptive_layout(rf, target);
      }
      break;
    }
  }

  out.col_bits = ceil_log2(static_cast<std::uint64_t>(b.ncols));
  // Key-only is only reachable under cfg.value_free, and the assertion is
  // about the *semiring*; the operands must also be free of explicit
  // stored zeros (see has_stored_zero) — downgrade the flag here, where
  // the values are in hand (predict_tuple_format has no operands and
  // predicts the common no-stored-zero case).
  PbConfig ecfg = cfg;
  if (ecfg.value_free &&
      (ecfg.format == FormatPolicy::kAuto ||
       ecfg.format == FormatPolicy::kKeyOnly) &&
      (has_stored_zero(a.vals) || has_stored_zero(b.vals))) {
    ecfg.value_free = false;
  }
  out.format = pick_format(out.layout, a.nrows, out.col_bits, ecfg);

  std::vector<nnz_t> counts = bin_histogram(a, b, out.layout);
  counts.pop_back();  // drop the scan-scratch slot
  out.bin_fill = counts;

  // Region layout: pad every bin to a cache-line-multiple boundary so full
  // local-bin flushes are line aligned (see SymbolicResult): 4 wide tuples
  // are one 64 B line; 16 narrow tuples are one 64 B key line (and two
  // value lines — or one f32 value line); 8 key-only tuples are one 64 B
  // line.  Key-only has no value lanes at all, so the byte pool sized
  // from these offsets charges 8 B/tuple — zero-width values.
  const nnz_t pad = (out.format == TupleFormat::kNarrow ||
                     out.format == TupleFormat::kNarrowF32)
                        ? 16
                        : (out.format == TupleFormat::kKeyOnly ? 8 : 4);
  out.bin_offsets.assign(static_cast<std::size_t>(out.layout.nbins) + 1, 0);
  nnz_t cursor = 0;
  nnz_t total_fill = 0;
  for (int bin = 0; bin < out.layout.nbins; ++bin) {
    out.bin_offsets[static_cast<std::size_t>(bin)] = cursor;
    cursor += (counts[static_cast<std::size_t>(bin)] + pad - 1) / pad * pad;
    total_fill += counts[static_cast<std::size_t>(bin)];
  }
  out.bin_offsets[static_cast<std::size_t>(out.layout.nbins)] = cursor;
  assert(total_fill == out.flop);
  (void)total_fill;

  // Bin -> home-node map: contiguous flop-balanced partition over the
  // machine's NUMA nodes.  Contiguity keeps each node's share of the
  // tuple pool one address range (range/adaptive layouts are row-ordered,
  // so it is also a row partition); balancing by fill gives every node
  // roughly flop/nnodes tuples to serve from local memory.
  const int nnodes = numa_topology().nnodes;
  out.numa_nodes = 1;
  out.bin_home.assign(static_cast<std::size_t>(out.layout.nbins), 0);
  if (nnodes > 1 && out.flop > 0) {
    const double share =
        static_cast<double>(out.flop) / static_cast<double>(nnodes);
    nnz_t seen = 0;
    for (int bin = 0; bin < out.layout.nbins; ++bin) {
      const int node = std::min(
          nnodes - 1, static_cast<int>(static_cast<double>(seen) / share));
      out.bin_home[static_cast<std::size_t>(bin)] = node;
      out.numa_nodes = std::max(out.numa_nodes, node + 1);
      seen += counts[static_cast<std::size_t>(bin)];
    }
  }

  // Traffic model: the two pointer arrays (Algorithm 3 streams them) plus
  // one pass over A's row-id array for the bin histogram.
  out.modeled_bytes =
      static_cast<double>(a.ncols + 1) * sizeof(nnz_t) +
      static_cast<double>(b.nrows + 1) * sizeof(nnz_t) +
      static_cast<double>(a.nnz()) * sizeof(index_t);
  return out;
}

TupleFormat predict_tuple_format(index_t a_nrows, index_t b_ncols, nnz_t flop,
                                 const PbConfig& cfg) {
  if (cfg.format == FormatPolicy::kWide) return TupleFormat::kWide;
  const std::size_t l2 =
      cfg.l2_bytes != 0 ? cfg.l2_bytes : cache_info().l2_bytes;
  const int target = cfg.nbins > 0 ? cfg.nbins : auto_nbins(flop, l2);
  // Range and modulo geometries are structure-free, so the prediction
  // builds the real layout; adaptive uses range as its proxy (see header).
  const BinLayout layout = cfg.policy == BinPolicy::kModulo
                               ? make_modulo_layout(a_nrows, target)
                               : make_range_layout(a_nrows, target);
  const int col_bits = ceil_log2(static_cast<std::uint64_t>(b_ncols));
  return pick_format(layout, a_nrows, col_bits, cfg);
}

}  // namespace pbs::pb
