// Exclusive prefix sums (scans), serial and OpenMP-parallel.
//
// Scans appear on every hot path of this library: building CSR/CSC row
// pointers, laying out the global bins from per-bin flop histograms, and
// placing per-column expansion slices in the column-ESC baseline.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace pbs {

/// In-place exclusive scan over n+1 slots: on entry `a[0..n)` holds counts
/// (slot n ignored); on exit `a[i]` is the sum of the first i counts and
/// `a[n]` the grand total.  Returns the total.
nnz_t exclusive_scan_inplace(nnz_t* a, std::size_t n);

/// Parallel variant (two-pass blocked scan).  Falls back to the serial scan
/// below a size threshold where parallelism cannot pay for itself.
nnz_t exclusive_scan_inplace_parallel(nnz_t* a, std::size_t n);

/// CSR row-pointer finalization: on entry `rowptr[0] == 0` and
/// `rowptr[r+1]` holds row r's count; on exit `rowptr` is the standard CSR
/// pointer array (inclusive running sum).  `n` is the number of rows, so
/// `rowptr` has n+1 slots.  Returns the total count.
nnz_t counts_to_rowptr(nnz_t* rowptr, std::size_t n);

}  // namespace pbs
