#include "common/stream.hpp"

#include <algorithm>

#include "common/aligned_buffer.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace pbs {

double StreamResult::best_gbs() const {
  return std::max({copy_gbs, scale_gbs, add_gbs, triad_gbs});
}

namespace {

// Bytes moved per element, per kernel (read + write traffic), as defined by
// the reference STREAM benchmark.
constexpr double kCopyBytes = 2.0 * sizeof(double);
constexpr double kScaleBytes = 2.0 * sizeof(double);
constexpr double kAddBytes = 3.0 * sizeof(double);
constexpr double kTriadBytes = 3.0 * sizeof(double);

}  // namespace

StreamResult run_stream(std::size_t elements, int ntimes, int threads) {
  if (threads <= 0) threads = max_threads();
  ThreadCountGuard guard(threads);

  AlignedBuffer<double> a(elements), b(elements), c(elements);
  const double scalar = 3.0;

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(elements); ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }

  double best_copy = 0, best_scale = 0, best_add = 0, best_triad = 0;
  Timer t;
  for (int iter = 0; iter < ntimes; ++iter) {
    t.reset();
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(elements); ++i)
      c[i] = a[i];
    best_copy = std::max(best_copy, kCopyBytes * elements / t.elapsed_s());

    t.reset();
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(elements); ++i)
      b[i] = scalar * c[i];
    best_scale = std::max(best_scale, kScaleBytes * elements / t.elapsed_s());

    t.reset();
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(elements); ++i)
      c[i] = a[i] + b[i];
    best_add = std::max(best_add, kAddBytes * elements / t.elapsed_s());

    t.reset();
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(elements); ++i)
      a[i] = b[i] + scalar * c[i];
    best_triad = std::max(best_triad, kTriadBytes * elements / t.elapsed_s());
  }

  constexpr double kGiga = 1e9;
  return StreamResult{best_copy / kGiga, best_scale / kGiga, best_add / kGiga,
                      best_triad / kGiga};
}

}  // namespace pbs
