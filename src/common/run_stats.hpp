// Summary statistics over repeated benchmark runs.
#pragma once

#include <vector>

namespace pbs {

/// min / median / mean / max / stddev of a sample set.  The bench harness
/// reports the *minimum* time (best run) for FLOPS, like the paper's
/// STREAM-style methodology, but keeps the spread for EXPERIMENTS.md.
struct RunStats {
  double min = 0, median = 0, mean = 0, max = 0, stddev = 0;
  int n = 0;

  static RunStats of(std::vector<double> samples);
};

}  // namespace pbs
