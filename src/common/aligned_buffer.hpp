// Cache-line-aligned, non-initializing buffer.
//
// The PB-SpGEMM global bin array can be many GB; value-initializing it (as
// std::vector does) would touch every page once for nothing.  The paper's
// symbolic phase explicitly notes "allocate shared array to store tuples,
// no initialization needed" (Algorithm 3, line 7).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <utility>

namespace pbs {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, aligned, default-uninitialized array of trivially-destructible T.
/// Move-only; freeing happens in the destructor (RAII, no raw new/delete at
/// call sites).
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer never runs destructors");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { allocate(n); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  /// Discards current contents and allocates n elements (uninitialized).
  void allocate(std::size_t n) {
    release();
    if (n == 0) return;
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    size_ = n;
  }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pbs
