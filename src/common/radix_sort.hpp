// In-place MSD radix sort ("American flag sort", McIlroy/Bostic/McIlroy) for
// arrays of {integer key, payload} records.
//
// This is the sort at the heart of PB-SpGEMM's per-bin sorting phase
// (paper Sec. III-D).  Two properties matter there:
//
//  1. *In place* — a bin is sized to fit L2; a copying LSD sort would double
//     the footprint and evict half the bin.
//  2. *Byte skipping* — tuple keys are (rowid << 32) | colid, but inside a
//     bin only ~log2(rows_per_bin) row bits and log2(ncols) column bits
//     actually vary.  By detecting constant bytes from a key-OR/AND sweep we
//     sort only the varying bytes, which reproduces the paper's "squeeze
//     keys into 4-byte integers, four passes" optimization with a single
//     code path for any bin geometry.
//
// The sort is not stable for equal keys; PB-SpGEMM only needs equal keys
// adjacent (they are summed immediately afterwards).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace pbs {

namespace detail {

/// Insertion sort fallback for small buckets; sorts by key only.
template <typename Record, typename KeyFn>
void insertion_sort(Record* a, std::size_t n, KeyFn key) {
  for (std::size_t i = 1; i < n; ++i) {
    Record tmp = a[i];
    const auto k = key(tmp);
    std::size_t j = i;
    while (j > 0 && key(a[j - 1]) > k) {
      a[j] = a[j - 1];
      --j;
    }
    a[j] = tmp;
  }
}

/// One American-flag pass on byte `shift/8`, then recursion on sub-buckets.
template <typename Record, typename KeyFn>
void flag_sort_pass(Record* a, std::size_t n, int shift, std::uint64_t varying,
                    KeyFn key) {
  constexpr std::size_t kInsertionCutoff = 48;
  // Descend past bytes in which no key differs.
  while (shift >= 0 && ((varying >> shift) & 0xFFu) == 0) shift -= 8;
  if (shift < 0) return;
  if (n <= kInsertionCutoff) {
    insertion_sort(a, n, key);
    return;
  }

  std::array<std::size_t, 256> count{};
  for (std::size_t i = 0; i < n; ++i)
    ++count[(key(a[i]) >> shift) & 0xFFu];

  std::array<std::size_t, 256> bucket_start;  // running cursor per bucket
  std::array<std::size_t, 256> bucket_end;
  std::size_t sum = 0;
  for (int b = 0; b < 256; ++b) {
    bucket_start[b] = sum;
    sum += count[b];
    bucket_end[b] = sum;
  }

  // Permute in place: walk buckets, swap each misplaced record into the
  // bucket its key demands until every bucket's cursor hits its end.
  for (int b = 0; b < 256; ++b) {
    while (bucket_start[b] < bucket_end[b]) {
      Record r = a[bucket_start[b]];
      int dest = static_cast<int>((key(r) >> shift) & 0xFFu);
      while (dest != b) {
        std::swap(r, a[bucket_start[dest]++]);
        dest = static_cast<int>((key(r) >> shift) & 0xFFu);
      }
      a[bucket_start[b]++] = r;
    }
  }

  if (shift == 0) return;
  std::size_t begin = 0;
  for (int b = 0; b < 256; ++b) {
    const std::size_t len = count[b];
    if (len > 1) flag_sort_pass(a + begin, len, shift - 8, varying, key);
    begin += len;
  }
}

}  // namespace detail

/// Sorts `a[0..n)` ascending by `key(record)` (any unsigned-integer-valued
/// callable).  In place, O(passes * n); passes = number of bytes in which
/// keys actually differ.
template <typename Record, typename KeyFn>
void radix_sort(Record* a, std::size_t n, KeyFn key) {
  if (n < 2) return;
  // OR of pairwise XORs == (OR of keys) ^ ... simplest: track min/max bits
  // via OR and AND; a byte varies iff or_bits and and_bits differ there.
  std::uint64_t or_bits = 0, and_bits = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key(a[i]);
    or_bits |= k;
    and_bits &= k;
  }
  const std::uint64_t varying = or_bits ^ and_bits;
  if (varying == 0) return;  // all keys equal
  detail::flag_sort_pass(a, n, 56, varying, key);
}

/// Convenience overload for records with a public `key` member.
template <typename Record>
void radix_sort(Record* a, std::size_t n) {
  radix_sort(a, n, [](const Record& r) { return r.key; });
}

/// LSD (least-significant-digit-first) radix sort into/out of a scratch
/// buffer of the same length.
///
/// The in-place American-flag permute above chases displacement cycles —
/// each swap's destination depends on the record it just evicted, a serial
/// L2-latency chain per element.  The LSD scatter has fully independent
/// iterations the core can overlap, at the cost of n extra records of
/// scratch.  PB-SpGEMM's bins are sized to half of L2 precisely so that
/// bin + scratch stay cache-resident (pb/sort_compress.cpp), making this
/// the faster choice for the per-bin sort; the in-place variant remains for
/// callers without scratch to spare.
///
/// All byte histograms are gathered in one read pass, and constant bytes
/// are skipped — with range binning only ~log2(rows_per_bin) row bits and
/// log2(ncols) column bits vary, reproducing the paper's "4-byte keys,
/// four passes" optimization.  When the pass count is odd the histogram
/// pass (which reads every record anyway) also copies the input to scratch
/// so the ping-pong starts there and the final scatter lands in `a` — no
/// trailing copy-back pass regardless of parity.  Stable (LSD scatters
/// preserve order), which the pipeline doesn't require but tests may rely
/// on.
template <typename Record, typename KeyFn>
void radix_sort_lsd(Record* a, std::size_t n, Record* scratch, KeyFn key) {
  if (n < 2) return;

  // Pass 1 (cheap, vectorizable): find which key bytes actually vary.
  std::uint64_t or_bits = 0, and_bits = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key(a[i]);
    or_bits |= k;
    and_bits &= k;
  }
  const std::uint64_t varying = or_bits ^ and_bits;
  if (varying == 0) return;

  int passes[8];
  int npasses = 0;
  for (int byte = 0; byte < 8; ++byte) {
    if (((varying >> (8 * byte)) & 0xFFu) != 0) passes[npasses++] = byte;
  }
  const bool odd = (npasses % 2) != 0;

  // Pass 2: histograms for the varying bytes only (typically 3-4 of 8).
  // With an odd pass count the records are copied to scratch here, fused
  // into a pass that already streams them.
  std::array<std::array<std::uint32_t, 256>, 8> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = key(a[i]);
    for (int p = 0; p < npasses; ++p)
      ++hist[passes[p]][(k >> (8 * passes[p])) & 0xFFu];
    if (odd) scratch[i] = a[i];
  }

  Record* src = odd ? scratch : a;
  Record* dst = odd ? a : scratch;
  for (int p = 0; p < npasses; ++p) {
    const int byte = passes[p];
    std::array<std::uint32_t, 256> offset;
    std::uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offset[b] = sum;
      sum += hist[byte][b];
    }
    const int shift = 8 * byte;
    for (std::size_t i = 0; i < n; ++i)
      dst[offset[(key(src[i]) >> shift) & 0xFFu]++] = src[i];
    std::swap(src, dst);
  }
}

namespace detail {

/// Shared skeleton of the SoA LSD sorts: byte-skipping histogram setup over
/// an unsigned key array, then `Scatter(byte_index, src_is_a)` once per
/// varying byte.  `CopyToScratch(i)` copies element i and is invoked from
/// inside the histogram loop (which already streams every record) when the
/// pass count is odd, so the ping-pong starts in scratch and the result
/// lands in the caller's arrays with no extra traversal (same parity trick
/// as radix_sort_lsd above).
template <typename Key, typename CopyToScratch, typename Scatter>
void lsd_soa_driver(const Key* keys, std::size_t n, CopyToScratch copy,
                    Scatter scatter) {
  constexpr int kKeyBytes = static_cast<int>(sizeof(Key));

  Key or_bits = 0, and_bits = static_cast<Key>(~Key{0});
  for (std::size_t i = 0; i < n; ++i) {
    or_bits |= keys[i];
    and_bits &= keys[i];
  }
  const Key varying = or_bits ^ and_bits;
  if (varying == 0) return;

  int passes[kKeyBytes];
  int npasses = 0;
  for (int byte = 0; byte < kKeyBytes; ++byte) {
    if (((varying >> (8 * byte)) & 0xFFu) != 0) passes[npasses++] = byte;
  }
  const bool odd = (npasses % 2) != 0;

  std::array<std::array<std::uint32_t, 256>, kKeyBytes> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = keys[i];
    for (int p = 0; p < npasses; ++p)
      ++hist[passes[p]][(k >> (8 * passes[p])) & 0xFFu];
    if (odd) copy(i);
  }

  bool src_is_a = !odd;
  for (int p = 0; p < npasses; ++p) {
    const int byte = passes[p];
    std::array<std::uint32_t, 256> offset;
    std::uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offset[b] = sum;
      sum += hist[byte][b];
    }
    scatter(byte, src_is_a, offset);
    src_is_a = !src_is_a;
  }
}

}  // namespace detail

/// Structure-of-arrays LSD radix sort: sorts `keys[0..n)` ascending while
/// keeping `vals[i]` paired with its key.  This is the sort of PB-SpGEMM's
/// narrow tuple format (pb/tuple.hpp): each scatter pass moves a 4-byte
/// key + 8-byte value instead of a 16-byte AoS record, and the bit-scan +
/// histogram passes touch only the key array — 4 of the 12 bytes.  Same
/// byte skipping, odd-pass parity handling and stability as
/// radix_sort_lsd.  `key_scratch` and `val_scratch` must each hold n
/// elements.
template <typename Key, typename Value>
void radix_sort_lsd_kv(Key* keys, Value* vals, std::size_t n,
                       Key* key_scratch, Value* val_scratch) {
  static_assert(std::is_unsigned_v<Key>, "radix keys must be unsigned");
  if (n < 2) return;

  detail::lsd_soa_driver(
      keys, n,
      [&](std::size_t i) {
        key_scratch[i] = keys[i];
        val_scratch[i] = vals[i];
      },
      [&](int byte, bool src_is_a, std::array<std::uint32_t, 256>& offset) {
        const Key* ks = src_is_a ? keys : key_scratch;
        const Value* vs = src_is_a ? vals : val_scratch;
        Key* kd = src_is_a ? key_scratch : keys;
        Value* vd = src_is_a ? val_scratch : vals;
        const int shift = 8 * byte;
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t pos = offset[(ks[i] >> shift) & 0xFFu]++;
          kd[pos] = ks[i];
          vd[pos] = vs[i];
        }
      });
}

/// Keys-only LSD radix sort: sorts `keys[0..n)` ascending with no payload
/// lane at all.  This is the sort of PB-SpGEMM's key-only tuple format
/// (pb/tuple.hpp): for a value-free semiring the stream carries nothing
/// but 8-byte keys, so each scatter pass moves 8 bytes instead of the 16
/// the AoS sort moves — the value scatter is not merely cheap, it is
/// gone.  Same byte skipping, odd-pass parity handling and stability as
/// radix_sort_lsd.  `scratch` must hold n elements.
template <typename Key>
void radix_sort_lsd_keys(Key* keys, std::size_t n, Key* scratch) {
  static_assert(std::is_unsigned_v<Key>, "radix keys must be unsigned");
  if (n < 2) return;

  detail::lsd_soa_driver(
      keys, n, [&](std::size_t i) { scratch[i] = keys[i]; },
      [&](int byte, bool src_is_a, std::array<std::uint32_t, 256>& offset) {
        const Key* ks = src_is_a ? keys : scratch;
        Key* kd = src_is_a ? scratch : keys;
        const int shift = 8 * byte;
        for (std::size_t i = 0; i < n; ++i)
          kd[offset[(ks[i] >> shift) & 0xFFu]++] = ks[i];
      });
}

/// Key + payload-index LSD radix sort: sorts `keys[0..n)` ascending,
/// co-permuting the caller's `index` array (typically iota into a payload
/// array the caller gathers once afterwards).  Scatter passes move
/// sizeof(Key) + 4 bytes per record — for 4-byte narrow keys that is 8 of
/// the 16 bytes the AoS sort moves.  Worth it over radix_sort_lsd_kv when
/// the payload is wide or the pass count high; the caller pays one final
/// gather.  Same byte skipping, parity handling and stability as
/// radix_sort_lsd.
template <typename Key>
void radix_sort_lsd_index(Key* keys, std::uint32_t* index, std::size_t n,
                          Key* key_scratch, std::uint32_t* index_scratch) {
  static_assert(std::is_unsigned_v<Key>, "radix keys must be unsigned");
  if (n < 2) return;

  detail::lsd_soa_driver(
      keys, n,
      [&](std::size_t i) {
        key_scratch[i] = keys[i];
        index_scratch[i] = index[i];
      },
      [&](int byte, bool src_is_a, std::array<std::uint32_t, 256>& offset) {
        const Key* ks = src_is_a ? keys : key_scratch;
        const std::uint32_t* is = src_is_a ? index : index_scratch;
        Key* kd = src_is_a ? key_scratch : keys;
        std::uint32_t* id = src_is_a ? index_scratch : index;
        const int shift = 8 * byte;
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint32_t pos = offset[(ks[i] >> shift) & 0xFFu]++;
          kd[pos] = ks[i];
          id[pos] = is[i];
        }
      });
}

}  // namespace pbs
