// STREAM sustainable-bandwidth benchmark (McCalpin) — Copy/Scale/Add/Triad.
//
// The paper calibrates its Roofline model with STREAM (Table V) and judges
// PB-SpGEMM's phases by how close their sustained bandwidth comes to it.
// We embed the four kernels so that β is always measured on the machine the
// experiments actually run on.
#pragma once

#include <cstddef>

namespace pbs {

struct StreamResult {
  double copy_gbs;   ///< c[i] = a[i]
  double scale_gbs;  ///< b[i] = s*c[i]
  double add_gbs;    ///< c[i] = a[i] + b[i]
  double triad_gbs;  ///< a[i] = b[i] + s*c[i]

  /// The β the Roofline model should use: the paper treats the Triad figure
  /// ("~55 GB/s on a single socket") as the attainable bandwidth.
  [[nodiscard]] double best_gbs() const;
};

/// Runs the four STREAM kernels `ntimes` times over arrays of
/// `elements` doubles each and reports the best observed bandwidth,
/// exactly as the reference STREAM does.  `threads` <= 0 means "use all".
StreamResult run_stream(std::size_t elements = 1 << 25, int ntimes = 8,
                        int threads = 0);

}  // namespace pbs
