#pragma once

// Deterministic fault injection for robustness testing, compiled into
// all builds (the disabled fast path is one relaxed atomic load).
//
// Three fault families:
//   - nth-allocation failure: FaultInjector::fail_alloc_after(n) makes
//     the (n+1)-th budgeted workspace allocation throw
//     FaultInjectedAllocError (one-shot: the injector disarms after
//     firing so a retry on the same executor succeeds).
//   - phase-boundary throws: FaultInjector::throw_at(point, skip)
//     makes the (skip+1)-th crossing of that FaultPoint throw
//     FaultInjectedError (also one-shot).
//   - forced-slow bins: FaultInjector::slow_bin(ms) sleeps every
//     sort/compress bin task, for deadline/cancel stress tests.
//
// Env activation (read once, on first hook crossing):
//   PBS_FAULT_ALLOC_AFTER=N
//   PBS_FAULT_THROW_AT=point[:skip]   point in {plan_build, expand,
//                                     sort_compress, convert, batch_worker}
//   PBS_FAULT_SLOW_BIN_MS=MS

#include <cstddef>
#include <cstdint>

namespace pbs {

enum class FaultPoint : int {
  kPlanBuild = 0,
  kExpand = 1,
  kSortCompress = 2,
  kConvert = 3,
  kBatchWorker = 4,
};
inline constexpr int kNumFaultPoints = 5;

const char* fault_point_name(FaultPoint p) noexcept;

class FaultInjector {
 public:
  // True once any fault is armed (API or env).  Relaxed fast path.
  static bool enabled() noexcept;

  // --- arming (tests / CLI) ---
  static void fail_alloc_after(std::int64_t n) noexcept;
  static void throw_at(FaultPoint p, std::int64_t skip = 0) noexcept;
  static void slow_bin(std::uint32_t ms) noexcept;
  static void reset() noexcept;

  // --- hooks (library call sites) ---

  // Budgeted workspace allocation about to happen.  Throws
  // FaultInjectedAllocError when the armed countdown hits zero.
  static void on_alloc(std::size_t bytes) {
    if (!enabled()) return;
    on_alloc_slow(bytes);
  }

  // Phase boundary crossed (outside any parallel region).  Throws
  // FaultInjectedError when the armed countdown hits zero.
  static void at(FaultPoint p) {
    if (!enabled()) return;
    at_slow(p);
  }

  // Per-bin work item about to run; sleeps when slow-bin is armed.
  static void on_bin() {
    if (!enabled()) return;
    on_bin_slow();
  }

 private:
  static void on_alloc_slow(std::size_t bytes);
  static void at_slow(FaultPoint p);
  static void on_bin_slow();
};

}  // namespace pbs
