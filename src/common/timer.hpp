// Wall-clock timing.  All bandwidth and FLOPS numbers in the bench harness
// derive from this monotonic timer.
#pragma once

#include <chrono>

namespace pbs {

/// Monotonic wall-clock stopwatch.  `elapsed_s()` may be called repeatedly;
/// `reset()` restarts the epoch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase durations; used by PB-SpGEMM instrumentation.
class PhaseTimer {
 public:
  void start() { timer_.reset(); }

  /// Stops the current measurement and returns its duration in seconds.
  double stop() { return timer_.elapsed_s(); }

 private:
  Timer timer_;
};

}  // namespace pbs
