#include "common/prefix_sum.hpp"

#include <omp.h>

#include <vector>

namespace pbs {

nnz_t exclusive_scan_inplace(nnz_t* a, std::size_t n) {
  nnz_t running = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const nnz_t count = a[i];
    a[i] = running;
    running += count;
  }
  a[n] = running;
  return running;
}

nnz_t exclusive_scan_inplace_parallel(nnz_t* a, std::size_t n) {
  // A scan is bandwidth-bound; below ~64K elements the fork/join overhead
  // dominates any speedup.
  constexpr std::size_t kSerialCutoff = 1u << 16;
  if (n < kSerialCutoff) return exclusive_scan_inplace(a, n);

  const int nthreads = omp_get_max_threads();
  std::vector<nnz_t> block_total(static_cast<std::size_t>(nthreads) + 1, 0);

#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const int nt = omp_get_num_threads();
    const std::size_t chunk = (n + nt - 1) / nt;
    const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(tid));
    const std::size_t hi = std::min(n, lo + chunk);

    // Pass 1: local exclusive scan of each block, remembering its total.
    nnz_t running = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const nnz_t count = a[i];
      a[i] = running;
      running += count;
    }
    block_total[static_cast<std::size_t>(tid) + 1] = running;

#pragma omp barrier
#pragma omp single
    {
      for (int t = 1; t <= nt; ++t) block_total[t] += block_total[t - 1];
    }

    // Pass 2: shift each block by the sum of all preceding blocks.
    const nnz_t offset = block_total[tid];
    if (offset != 0) {
      for (std::size_t i = lo; i < hi; ++i) a[i] += offset;
    }
  }

  const nnz_t total = block_total.back();
  a[n] = total;
  return total;
}

nnz_t counts_to_rowptr(nnz_t* rowptr, std::size_t n) {
  for (std::size_t r = 0; r < n; ++r) rowptr[r + 1] += rowptr[r];
  return rowptr[n];
}

}  // namespace pbs
