#include "common/cache_info.hpp"

#include <unistd.h>

#include <fstream>
#include <string>

namespace pbs {

namespace {

std::size_t sysfs_cache_bytes(int index) {
  const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                           std::to_string(index) + "/size";
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t value = 0;
  char suffix = '\0';
  in >> value >> suffix;
  if (suffix == 'K' || suffix == 'k') value *= 1024;
  if (suffix == 'M' || suffix == 'm') value *= 1024 * 1024;
  return value;
}

std::size_t sysconf_or(int name, std::size_t fallback) {
  const long v = sysconf(name);
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

CacheInfo detect() {
  CacheInfo info{};
  info.l1d_bytes = sysconf_or(_SC_LEVEL1_DCACHE_SIZE, 0);
  info.l2_bytes = sysconf_or(_SC_LEVEL2_CACHE_SIZE, 0);
  info.l3_bytes = sysconf_or(_SC_LEVEL3_CACHE_SIZE, 0);
  info.line_bytes = sysconf_or(_SC_LEVEL1_DCACHE_LINESIZE, 0);

  // sysconf reports 0 on many container kernels; try sysfs, then defaults.
  // sysfs index order is typically 0=L1d, 1=L1i, 2=L2, 3=L3.
  if (info.l1d_bytes == 0) info.l1d_bytes = sysfs_cache_bytes(0);
  if (info.l2_bytes == 0) info.l2_bytes = sysfs_cache_bytes(2);
  if (info.l3_bytes == 0) info.l3_bytes = sysfs_cache_bytes(3);

  if (info.l1d_bytes == 0) info.l1d_bytes = 32u * 1024;
  if (info.l2_bytes == 0) info.l2_bytes = 1024u * 1024;   // Skylake-SP: 1MB
  if (info.l3_bytes == 0) info.l3_bytes = 16u * 1024 * 1024;
  if (info.line_bytes == 0) info.line_bytes = 64;
  return info;
}

}  // namespace

const CacheInfo& cache_info() {
  static const CacheInfo info = detect();
  return info;
}

}  // namespace pbs
