#include "common/env_report.hpp"

#include <unistd.h>

#include <fstream>
#include <ostream>
#include <string>

#include "common/cache_info.hpp"
#include "common/parallel.hpp"

namespace pbs {

EnvReport collect_env_report() {
  EnvReport r;
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos) r.cpu_model = line.substr(colon + 2);
      break;
    }
  }
  if (r.cpu_model.empty()) r.cpu_model = "unknown";
  const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
  r.logical_cpus = ncpu > 0 ? static_cast<int>(ncpu) : 1;
  r.omp_max_threads = max_threads();
  const CacheInfo& c = cache_info();
  r.l1d_bytes = c.l1d_bytes;
  r.l2_bytes = c.l2_bytes;
  r.l3_bytes = c.l3_bytes;
  return r;
}

void print_env_report(std::ostream& os, const EnvReport& r) {
  os << "# cpu: " << r.cpu_model << "\n"
     << "# logical cpus: " << r.logical_cpus
     << ", omp max threads: " << r.omp_max_threads << "\n"
     << "# caches: L1d " << r.l1d_bytes / 1024 << "K, L2 "
     << r.l2_bytes / 1024 << "K, L3 " << r.l3_bytes / 1024 << "K\n";
}

}  // namespace pbs
