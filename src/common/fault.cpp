#include "fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "errors.hpp"

namespace pbs {

namespace {

// -1 = env not yet consulted, 0 = idle, 1 = at least one fault armed.
std::atomic<int> g_state{-1};
std::once_flag g_env_once;

std::atomic<std::int64_t> g_alloc_countdown{-1};        // -1 = unarmed
std::atomic<std::int64_t> g_point_countdown[kNumFaultPoints] = {
    {-1}, {-1}, {-1}, {-1}, {-1}};
std::atomic<std::uint32_t> g_slow_bin_ms{0};

bool any_armed() noexcept {
  if (g_alloc_countdown.load(std::memory_order_relaxed) >= 0) return true;
  for (const auto& c : g_point_countdown)
    if (c.load(std::memory_order_relaxed) >= 0) return true;
  return g_slow_bin_ms.load(std::memory_order_relaxed) > 0;
}

void refresh_state() noexcept {
  g_state.store(any_armed() ? 1 : 0, std::memory_order_release);
}

FaultPoint parse_point(const std::string& name, bool& ok) noexcept {
  ok = true;
  if (name == "plan_build") return FaultPoint::kPlanBuild;
  if (name == "expand") return FaultPoint::kExpand;
  if (name == "sort_compress") return FaultPoint::kSortCompress;
  if (name == "convert") return FaultPoint::kConvert;
  if (name == "batch_worker") return FaultPoint::kBatchWorker;
  ok = false;
  return FaultPoint::kPlanBuild;
}

void init_from_env() noexcept {
  if (const char* s = std::getenv("PBS_FAULT_ALLOC_AFTER")) {
    g_alloc_countdown.store(std::strtoll(s, nullptr, 10),
                            std::memory_order_relaxed);
  }
  if (const char* s = std::getenv("PBS_FAULT_THROW_AT")) {
    std::string spec(s);
    std::int64_t skip = 0;
    if (auto colon = spec.find(':'); colon != std::string::npos) {
      skip = std::strtoll(spec.c_str() + colon + 1, nullptr, 10);
      spec.resize(colon);
    }
    bool ok = false;
    FaultPoint p = parse_point(spec, ok);
    if (ok)
      g_point_countdown[static_cast<int>(p)].store(skip,
                                                   std::memory_order_relaxed);
  }
  if (const char* s = std::getenv("PBS_FAULT_SLOW_BIN_MS")) {
    g_slow_bin_ms.store(static_cast<std::uint32_t>(std::strtoul(s, nullptr, 10)),
                        std::memory_order_relaxed);
  }
  refresh_state();
}

void ensure_env() noexcept {
  std::call_once(g_env_once, init_from_env);
}

}  // namespace

const char* fault_point_name(FaultPoint p) noexcept {
  switch (p) {
    case FaultPoint::kPlanBuild: return "plan_build";
    case FaultPoint::kExpand: return "expand";
    case FaultPoint::kSortCompress: return "sort_compress";
    case FaultPoint::kConvert: return "convert";
    case FaultPoint::kBatchWorker: return "batch_worker";
  }
  return "?";
}

bool FaultInjector::enabled() noexcept {
  int st = g_state.load(std::memory_order_relaxed);
  if (st >= 0) return st != 0;
  ensure_env();
  return g_state.load(std::memory_order_acquire) != 0;
}

void FaultInjector::fail_alloc_after(std::int64_t n) noexcept {
  ensure_env();
  g_alloc_countdown.store(n, std::memory_order_relaxed);
  refresh_state();
}

void FaultInjector::throw_at(FaultPoint p, std::int64_t skip) noexcept {
  ensure_env();
  g_point_countdown[static_cast<int>(p)].store(skip, std::memory_order_relaxed);
  refresh_state();
}

void FaultInjector::slow_bin(std::uint32_t ms) noexcept {
  ensure_env();
  g_slow_bin_ms.store(ms, std::memory_order_relaxed);
  refresh_state();
}

void FaultInjector::reset() noexcept {
  ensure_env();
  g_alloc_countdown.store(-1, std::memory_order_relaxed);
  for (auto& c : g_point_countdown) c.store(-1, std::memory_order_relaxed);
  g_slow_bin_ms.store(0, std::memory_order_relaxed);
  refresh_state();
}

void FaultInjector::on_alloc_slow(std::size_t) {
  // fetch_sub walks the countdown; exactly one thread observes 0 and
  // throws.  The injector then disarms (one-shot) so a subsequent
  // retry on the same process succeeds.
  if (g_alloc_countdown.load(std::memory_order_relaxed) < 0) return;
  if (g_alloc_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    g_alloc_countdown.store(-1, std::memory_order_relaxed);
    refresh_state();
    throw FaultInjectedAllocError();
  }
}

void FaultInjector::at_slow(FaultPoint p) {
  auto& countdown = g_point_countdown[static_cast<int>(p)];
  if (countdown.load(std::memory_order_relaxed) < 0) return;
  if (countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    countdown.store(-1, std::memory_order_relaxed);
    refresh_state();
    throw FaultInjectedError(std::string("fault injection: throw at ") +
                             fault_point_name(p));
  }
}

void FaultInjector::on_bin_slow() {
  std::uint32_t ms = g_slow_bin_ms.load(std::memory_order_relaxed);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace pbs
