// Fundamental scalar types used throughout the library.
//
// The paper accounts data movement assuming 4-byte indices and 8-byte
// values (b = 16 bytes per COO tuple, Sec. II-C).  We fix the same widths
// here instead of templating the whole library: `index_t` indexes rows and
// columns, `nnz_t` counts nonzeros/flops (these overflow 32 bits long
// before matrices stop fitting in memory), `value_t` is the numeric type.
#pragma once

#include <cstdint>
#include <cstddef>

namespace pbs {

using index_t = std::int32_t;  ///< row/column index (paper: 4 bytes)
using nnz_t = std::int64_t;    ///< nonzero / flop count, offset into tuple arrays
using value_t = double;        ///< numeric value (paper: 8 bytes)

/// Bytes needed per expanded COO tuple (rowid, colid, value) — the `b`
/// of the paper's arithmetic-intensity equations.
inline constexpr std::size_t kBytesPerTuple = 2 * sizeof(index_t) + sizeof(value_t);
static_assert(kBytesPerTuple == 16, "the paper's AI model assumes b = 16");

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  if (x <= 1) return 1;
  --x;
  x |= x >> 1;
  x |= x >> 2;
  x |= x >> 4;
  x |= x >> 8;
  x |= x >> 16;
  x |= x >> 32;
  return x + 1;
}

/// Number of bits needed to represent values in [0, n); ceil_log2(1) == 0.
constexpr int ceil_log2(std::uint64_t n) {
  int bits = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace pbs
