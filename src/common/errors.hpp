#pragma once

// Typed errors for the serving/robustness layer.  Callers that need to
// distinguish "request was cancelled" from "request hit its deadline"
// from "memory budget exceeded" catch these; everything derives from
// the standard hierarchy so existing catch(std::exception&) handlers
// keep working.

#include <new>
#include <stdexcept>
#include <string>

namespace pbs {

// A run was cancelled cooperatively (SpGemmExecutor::cancel() or a
// caller-provided CancelToken fired).
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

// A run exceeded its deadline (RunOptions::timeout / deadline).  A
// deadline is one way a run gets cancelled, hence the inheritance.
class DeadlineError : public CancelledError {
 public:
  explicit DeadlineError(const std::string& what) : CancelledError(what) {}
};

// A workspace allocation would exceed the executor's memory budget.
// Derives from std::bad_alloc so the executor's graceful-degradation
// path (catch bad_alloc -> fall back to row-wise kernel) handles real
// OOM and budget rejection uniformly.
class MemoryBudgetError : public std::bad_alloc {
 public:
  explicit MemoryBudgetError(std::string what) : what_(std::move(what)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

// FaultInjector-produced allocation failure (stands in for bad_alloc).
class FaultInjectedAllocError : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "fault injection: allocation failure";
  }
};

// FaultInjector-produced phase-boundary failure.  Deliberately NOT a
// bad_alloc: the executor must propagate it (exception-safety tests),
// not absorb it into the degradation path.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// Malformed input matrix (csr_validate / matrix-market ingress).
class ValidationError : public std::runtime_error {
 public:
  explicit ValidationError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace pbs
