// Machine/environment description printed at the top of every bench run so
// that EXPERIMENTS.md numbers are traceable to a concrete configuration.
#pragma once

#include <iosfwd>
#include <string>

namespace pbs {

struct EnvReport {
  std::string cpu_model;
  int logical_cpus = 0;
  int omp_max_threads = 0;
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
};

/// Gathers /proc/cpuinfo + cache + OpenMP facts.
EnvReport collect_env_report();

/// Pretty-prints as a comment block ("# cpu: ...").
void print_env_report(std::ostream& os, const EnvReport& report);

}  // namespace pbs
