// Thin OpenMP helpers.  Keeping every `#pragma omp` behind these functions
// gives tests one switch for thread counts and keeps the algorithm code
// readable.
#pragma once

#include <omp.h>

#include <algorithm>

namespace pbs {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

/// Caps the global OpenMP thread count (used by scalability benches).
inline void set_threads(int n) { omp_set_num_threads(std::max(1, n)); }

/// RAII guard that temporarily overrides the OpenMP thread count.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(std::max(1, n));
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

}  // namespace pbs
