// Thin OpenMP helpers.  Keeping every `#pragma omp` behind these functions
// gives tests one switch for thread counts and keeps the algorithm code
// readable.  The work-stealing deque of the pipelined PB schedule lives
// here too: it is a generic scheduling primitive, not a PB data structure.
#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace pbs {

/// Number of threads an upcoming parallel region will use.
inline int max_threads() { return omp_get_max_threads(); }

/// Caps the global OpenMP thread count (used by scalability benches).
inline void set_threads(int n) { omp_set_num_threads(std::max(1, n)); }

/// RAII guard that temporarily overrides the OpenMP thread count.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : saved_(omp_get_max_threads()) {
    omp_set_num_threads(std::max(1, n));
  }
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int saved_;
};

/// Fixed-capacity Chase–Lev work-stealing deque (Chase & Lev, SPAA'05, in
/// the C11 memory-order formulation of Lê et al., PPoPP'13).  One owner
/// thread push()es and pop()s at the bottom (LIFO — the most recently
/// produced task is the cache-hottest); any other thread steal()s from the
/// top (FIFO).  T must be trivially copyable; elements are stored in
/// atomics so a steal racing a wrapped-around push is a defined (relaxed)
/// access, keeping the structure clean under TSan.
///
/// The capacity is fixed at construction (rounded up to a power of two)
/// and never grows: the pipelined PB schedule knows its total task count
/// (nbins) up front, so the owner can never overrun a deque sized for it.
/// push() into a full deque is a precondition violation (assert).
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit WorkStealingDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < std::max<std::size_t>(capacity, 2)) cap <<= 1;
    mask_ = static_cast<std::int64_t>(cap) - 1;
    buffer_ = std::make_unique<std::atomic<T>[]>(cap);
  }

  /// Owner only.  The deque must not be full.
  void push(T v) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    assert(b - top_.load(std::memory_order_acquire) <= mask_ &&
           "WorkStealingDeque overflow: capacity must cover all pushes");
    buffer_[b & mask_].store(v, std::memory_order_relaxed);
    // Publish the slot before the new bottom: a thief that observes b+1
    // must also observe the element (and everything the owner wrote
    // before this push — the fence pairs with steal()'s acquire loads).
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner only.  LIFO; false when empty.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    // The seq_cst fence orders the bottom decrement against thieves'
    // top reads — the classic Chase–Lev race on the last element.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buffer_[b & mask_].load(std::memory_order_relaxed);
    if (t != b) return true;  // more than one element: no race possible
    // Single element: race the thieves for it via top.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }

  /// Any thread.  FIFO; false when empty or when the steal lost a race
  /// (callers treat both as "try elsewhere, then retry").
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    out = buffer_[t & mask_].load(std::memory_order_relaxed);
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  /// Snapshot size (racy by nature; exact when quiescent).
  [[nodiscard]] std::int64_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return std::max<std::int64_t>(b - t, 0);
  }

 private:
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::int64_t mask_ = 1;
  std::unique_ptr<std::atomic<T>[]> buffer_;
};

}  // namespace pbs
