// NUMA topology discovery — no libnuma dependency.
//
// PB-SpGEMM's tuple pool is the largest allocation of the pipeline and is
// streamed by every phase, so on multi-socket machines it matters which
// memory controller each bin's region lands on.  Linux places a page on
// the node of the thread that first touches it; all the placement layer
// (PbWorkspace::place_bins / pb_symbolic's bin→node map) needs from here
// is the node count and a cpu→node map, both parsed once from
// /sys/devices/system/node.  On single-node hosts — and on any platform
// where the sysfs tree is absent — the topology degenerates to one node
// and placement becomes a plain parallel first-touch (still useful: it
// pre-faults the pool in parallel instead of serializing the faults into
// the first expand).
#pragma once

#include <vector>

namespace pbs {

struct NumaTopology {
  int nnodes = 1;
  /// cpu id -> node id; empty when the topology is unknown (treat every
  /// cpu as node 0).
  std::vector<int> cpu_to_node;
};

/// The machine's topology, parsed once (thread-safe static init).
const NumaTopology& numa_topology();

/// NUMA node of `cpu`, 0 when unknown.
int numa_node_of_cpu(int cpu);

/// NUMA node of the calling thread's current cpu, 0 when unknown.  Cheap
/// (one getcpu), but the thread may migrate afterwards — callers use it as
/// a placement hint, not an invariant.
int current_numa_node();

}  // namespace pbs
