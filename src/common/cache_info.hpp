// Cache hierarchy discovery.
//
// PB-SpGEMM sizes its global bins so each bin's tuples fit in L2 during the
// sort/merge phase (paper Algorithm 3, line 6: nbins = flops / L2_CACHE_SIZE)
// and sizes the set of thread-private local bins to fit in L2 as well.
#pragma once

#include <cstddef>

namespace pbs {

struct CacheInfo {
  std::size_t l1d_bytes;  ///< per-core L1 data cache
  std::size_t l2_bytes;   ///< per-core (or core-pair) L2 cache
  std::size_t l3_bytes;   ///< last-level cache (may be 0 if undetectable)
  std::size_t line_bytes; ///< cache line size
};

/// Queries sysconf / sysfs once and caches the result.  Falls back to
/// conservative defaults (32K/1M/16M/64B) when the platform hides them.
const CacheInfo& cache_info();

}  // namespace pbs
