#include "common/run_stats.hpp"

#include <algorithm>
#include <cmath>

namespace pbs {

RunStats RunStats::of(std::vector<double> samples) {
  RunStats s;
  s.n = static_cast<int>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t mid = samples.size() / 2;
  s.median = samples.size() % 2 == 1
                 ? samples[mid]
                 : 0.5 * (samples[mid - 1] + samples[mid]);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace pbs
