#pragma once

// Cooperative cancellation + deadlines for long-running SpGEMM runs.
//
// A CancelToken is configured (deadline, parent links) before it is
// shared with worker threads; after that only the atomic cancel flag
// mutates.  Hot loops poll stop_requested(), which throttles the
// steady_clock read through a thread_local counter so the expand inner
// loop never contends on a shared cache line.  Phase boundaries call
// throw_if_stopped(), which reads the clock unconditionally and raises
// the typed error (DeadlineError if the deadline passed, else
// CancelledError).

#include <atomic>
#include <chrono>
#include <cstdint>

#include "errors.hpp"

namespace pbs {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Fire the token.  const so shared `const CancelToken*` handles can
  // still cancel (the flag is mutable by design).
  void request_cancel() const noexcept {
    cancelled_.store(true, std::memory_order_release);
  }

  // --- configuration: call before sharing the token across threads ---

  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ = tp;
    has_deadline_ = true;
  }

  void set_timeout(std::chrono::nanoseconds d) noexcept {
    set_deadline(std::chrono::steady_clock::now() + d);
  }

  // Link a parent: this token reports stopped when the parent does.
  // At most two parents (caller token + executor epoch token).
  void link(const CancelToken* parent) noexcept {
    if (parent == nullptr) return;
    if (parents_[0] == nullptr) {
      parents_[0] = parent;
    } else if (parents_[1] == nullptr) {
      parents_[1] = parent;
    }
  }

  // --- polling ---

  bool cancel_requested() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    for (const CancelToken* p : parents_)
      if (p != nullptr && p->cancel_requested()) return true;
    return false;
  }

  bool deadline_expired() const noexcept {
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_)
      return true;
    for (const CancelToken* p : parents_)
      if (p != nullptr && p->deadline_expired()) return true;
    return false;
  }

  bool has_deadline() const noexcept {
    if (has_deadline_) return true;
    for (const CancelToken* p : parents_)
      if (p != nullptr && p->has_deadline()) return true;
    return false;
  }

  // Hot-loop check: flag every call, clock every 64th call per thread.
  bool stop_requested() const noexcept {
    if (cancel_requested()) return true;
    if (!has_deadline()) return false;
    thread_local std::uint32_t poll = 0;
    if ((++poll & 63u) != 0) return false;
    return deadline_expired();
  }

  // Phase-boundary check: unthrottled.
  bool stop_requested_now() const noexcept {
    return cancel_requested() || deadline_expired();
  }

  void throw_if_stopped() const {
    if (deadline_expired())
      throw DeadlineError("spgemm run exceeded its deadline");
    if (cancel_requested())
      throw CancelledError("spgemm run was cancelled");
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  const CancelToken* parents_[2] = {nullptr, nullptr};
};

inline bool stop_requested(const CancelToken* t) noexcept {
  return t != nullptr && t->stop_requested();
}

inline void throw_if_stopped(const CancelToken* t) {
  if (t != nullptr) t->throw_if_stopped();
}

}  // namespace pbs
