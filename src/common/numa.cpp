#include "common/numa.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

namespace pbs {

namespace {

// Parses a sysfs cpulist ("0-3,8-11,16") into cpu ids appended to `out`.
void parse_cpulist(const std::string& list, int node,
                   std::vector<int>& cpu_to_node) {
  std::istringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    int lo = 0;
    int hi = 0;
    const auto dash = item.find('-');
    try {
      if (dash == std::string::npos) {
        lo = hi = std::stoi(item);
      } else {
        lo = std::stoi(item.substr(0, dash));
        hi = std::stoi(item.substr(dash + 1));
      }
    } catch (...) {
      continue;  // malformed entry: skip, the map stays partial
    }
    if (lo < 0 || hi < lo || hi > 1 << 20) continue;
    if (static_cast<std::size_t>(hi) >= cpu_to_node.size()) {
      cpu_to_node.resize(static_cast<std::size_t>(hi) + 1, 0);
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      cpu_to_node[static_cast<std::size_t>(cpu)] = node;
    }
  }
}

NumaTopology detect() {
  NumaTopology topo;
#if defined(__linux__)
  // Probe node directories in order; the first gap ends the scan (sysfs
  // numbers online nodes contiguously on the machines we care about, and
  // a conservative undercount only costs placement quality, not
  // correctness).
  for (int node = 0;; ++node) {
    std::ifstream cpulist("/sys/devices/system/node/node" +
                          std::to_string(node) + "/cpulist");
    if (!cpulist.is_open()) break;
    std::string list;
    std::getline(cpulist, list);
    parse_cpulist(list, node, topo.cpu_to_node);
    topo.nnodes = node + 1;
  }
#endif
  topo.nnodes = std::max(topo.nnodes, 1);
  return topo;
}

}  // namespace

const NumaTopology& numa_topology() {
  static const NumaTopology topo = detect();
  return topo;
}

int numa_node_of_cpu(int cpu) {
  const NumaTopology& topo = numa_topology();
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= topo.cpu_to_node.size()) {
    return 0;
  }
  return topo.cpu_to_node[static_cast<std::size_t>(cpu)];
}

int current_numa_node() {
#if defined(__linux__)
  return numa_node_of_cpu(sched_getcpu());
#else
  return 0;
#endif
}

}  // namespace pbs
