// Elementwise post-operations fused into SpGEMM output assembly.
//
// Iterative workloads shape the product the moment it exists: MCL prunes
// tiny entries and keeps the top-k per row right after every expansion,
// AMG rescales, filtering queries threshold.  Run separately, each of
// those is a full extra read+write of C — exactly the traffic the PB
// pipeline exists to avoid.  A PostOp travels inside the operation
// descriptor (SpGemmOp::post_op) and is applied while the output row is
// still in cache: in the PB pipeline's per-bin filter stage (right after
// the fused mask, before convert ever sizes the CSR), and in the row-wise
// kernels' row flush.  The unpruned C is never materialized.
//
// The three knobs compose (all may be set at once) and apply in a fixed
// order chosen to match MCL's inflate-prune-select written as separate
// passes:
//
//   1. scale      v <- v * scale              (skipped when scale == 1)
//   2. prune      drop entries |v| < prune_threshold
//   3. top-k      keep the k largest-|v| entries per row
//                 (ties resolved toward smaller column ids, matching
//                 mtx::keep_top_k_per_row's selection; kept entries stay
//                 in ascending column order)
//
// Post-ops read and compare *values*, so they are rejected at plan time
// for value-free semirings (and the key-only tuple stream that carries
// them): there is no value to threshold.  This header sits in common/ so
// both the pb/ kernels and the spgemm/ descriptor layer can use it
// without an include cycle.
#pragma once

#include <cmath>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace pbs {

struct PostOp {
  double scale = 1.0;            ///< multiply every surviving value
  double prune_threshold = 0.0;  ///< drop |v| < threshold (0 = off)
  index_t top_k = 0;             ///< keep k largest-|v| per row (0 = off)

  /// True when any knob departs from the identity.
  [[nodiscard]] bool active() const {
    return scale != 1.0 || prune_threshold > 0.0 || top_k > 0;
  }

  /// True when the op can drop entries (prune or top-k) — a pure scale
  /// keeps the pattern, which lets value-only fast paths stay valid.
  [[nodiscard]] bool drops_entries() const {
    return prune_threshold > 0.0 || top_k > 0;
  }

  friend bool operator==(const PostOp&, const PostOp&) = default;
};

/// Parses a CLI/wire spec: comma-separated `prune:T`, `topk:K`, `scale:X`
/// terms in any order, e.g. "prune:1e-5,topk:64".  Throws
/// std::invalid_argument on unknown terms or malformed numbers.
inline PostOp parse_post_op(const std::string& spec) {
  PostOp op;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    const std::size_t colon = term.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("post-op term '" + term +
                                  "': expected name:value");
    }
    const std::string name = term.substr(0, colon);
    const std::string val = term.substr(colon + 1);
    try {
      if (name == "prune") {
        op.prune_threshold = std::stod(val);
        if (!(op.prune_threshold >= 0) || !std::isfinite(op.prune_threshold)) {
          throw std::invalid_argument("negative or non-finite");
        }
      } else if (name == "topk") {
        const long k = std::stol(val);
        if (k <= 0) throw std::invalid_argument("non-positive");
        op.top_k = static_cast<index_t>(k);
      } else if (name == "scale") {
        op.scale = std::stod(val);
        if (!std::isfinite(op.scale)) throw std::invalid_argument("non-finite");
      } else {
        throw std::invalid_argument("unknown term");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("post-op term '" + term +
                                  "': expected prune:THRESH, topk:K or "
                                  "scale:X with a valid number");
    }
    pos = end + 1;
  }
  return op;
}

/// Round-trips through parse_post_op; "" for the identity op.
inline std::string post_op_to_string(const PostOp& op) {
  std::string s;
  const auto append = [&s](const std::string& term) {
    if (!s.empty()) s += ',';
    s += term;
  };
  if (op.scale != 1.0) append("scale:" + std::to_string(op.scale));
  if (op.prune_threshold > 0) {
    append("prune:" + std::to_string(op.prune_threshold));
  }
  if (op.top_k > 0) append("topk:" + std::to_string(op.top_k));
  return s;
}

}  // namespace pbs
