// Umbrella header — the public API of the PB-SpGEMM library.
//
//   #include <pbs/pbs.hpp>
//
//   auto a   = pbs::mtx::coo_to_csr(pbs::mtx::generate_er(1 << 16, 1 << 16, 8, /*seed=*/1));
//   auto p   = pbs::SpGemmProblem::square(a);
//   auto c   = pbs::pb::pb_spgemm(p.a_csc, p.b_csr);     // with telemetry
//   auto c2  = pbs::algorithm("hash").fn(p);             // any baseline
//
//   // Repeated traffic: analyze + select once, execute many
//   auto plan = pbs::make_plan(p);          // algo = "auto" (roofline-guided)
//   for (...) auto c3 = plan.execute(p);    // no re-analysis, no re-allocation
//
//   // Serving: one executor, many structures/ops/threads
//   pbs::SpGemmExecutor exec;               // fingerprint-keyed plan cache
//   auto c4 = exec.run(p);                  // thread-safe, workspace-pooled
//
//   // Serving daemon: pbs_serve over a Unix socket (serve/server.hpp),
//   // or embed the pieces — wire protocol, shard router, registry:
//   pbs::serve::Client cli("/tmp/pbs_serve.sock");
//   auto h  = cli.upload(a);                // ship A once
//   auto c5 = cli.square(h);                // iterate by handle
//
// See README.md for the architecture overview and examples/ for complete
// programs.
#pragma once

#include "common/cache_info.hpp"
#include "common/parallel.hpp"
#include "common/run_stats.hpp"
#include "common/stream.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "matrix/convert.hpp"
#include "matrix/coo.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "matrix/dcsc.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix_market.hpp"
#include "matrix/mstats.hpp"
#include "matrix/ops.hpp"
#include "matrix/surrogates.hpp"
#include "model/roofline.hpp"
#include "model/selection.hpp"
#include "pb/partitioned.hpp"
#include "pb/pb_spgemm.hpp"
#include "pb/plan.hpp"
#include "pb/workspace_pool.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "spgemm/epilogue.hpp"
#include "spgemm/executor.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/op.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "spgemm/spgemm.hpp"
