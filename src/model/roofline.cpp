#include "model/roofline.hpp"

#include <iomanip>
#include <ostream>

namespace pbs::model {

double ai_upper_bound(double cf, double bytes_per_nnz) {
  return cf / bytes_per_nnz;
}

double ai_column_lower(double cf, double bytes_per_nnz) {
  return cf / ((2.0 + cf) * bytes_per_nnz);
}

double ai_outer_lower(double cf, double bytes_per_nnz) {
  return cf / ((3.0 + 2.0 * cf) * bytes_per_nnz);
}

double ai_outer_lower_tuple(double cf, double bytes_per_nnz,
                            double tuple_bytes) {
  return cf / (3.0 * bytes_per_nnz + 2.0 * cf * tuple_bytes);
}

double ai_outer_lower_masked(double cf, double cf_out, double bytes_per_nnz,
                             double tuple_bytes) {
  return 1.0 / (2.0 * bytes_per_nnz / cf + bytes_per_nnz / cf_out +
                2.0 * tuple_bytes);
}

double ai_column_lower_masked(double cf, double cf_out, double bytes_per_nnz) {
  return 1.0 /
         (bytes_per_nnz + bytes_per_nnz / cf + bytes_per_nnz / cf_out);
}

double attainable_gflops(double beta_gbs, double ai) { return beta_gbs * ai; }

SpGemmBounds bounds(double beta_gbs, double cf, double bytes_per_nnz) {
  SpGemmBounds b;
  b.ai_upper = ai_upper_bound(cf, bytes_per_nnz);
  b.ai_column = ai_column_lower(cf, bytes_per_nnz);
  b.ai_outer = ai_outer_lower(cf, bytes_per_nnz);
  b.perf_upper = attainable_gflops(beta_gbs, b.ai_upper);
  b.perf_column = attainable_gflops(beta_gbs, b.ai_column);
  b.perf_outer = attainable_gflops(beta_gbs, b.ai_outer);
  return b;
}

void print_fig3(std::ostream& os, double beta_gbs) {
  os << "# Fig. 3 — Roofline for multiplying two ER matrices (cf = 1, b = 16)\n";
  os << "# beta (STREAM) = " << beta_gbs << " GB/s; attainable = beta * AI\n";
  os << std::left << std::setw(12) << "AI(f/B)" << std::setw(16)
     << "attainable(GF/s)" << "\n";
  // The paper's x-axis: 1/128 to 1/4, doubling.
  for (double ai = 1.0 / 128; ai <= 1.0 / 4 + 1e-12; ai *= 2) {
    os << std::left << std::setw(12) << ai << std::setw(16)
       << attainable_gflops(beta_gbs, ai) << "\n";
  }
  const SpGemmBounds b = bounds(beta_gbs, 1.0);
  os << "# operating points (cf = 1):\n";
  os << "#   SpGEMM upper bound : AI = " << b.ai_upper << " (1/16)  -> "
     << b.perf_upper << " GFLOPS\n";
  os << "#   Outer SpGEMM (Eq.4): AI = " << b.ai_outer << " (1/80)  -> "
     << b.perf_outer << " GFLOPS\n";
  os << "#   Column SpGEMM (Eq.3): AI = " << b.ai_column << " (1/48) -> "
     << b.perf_column << " GFLOPS\n";
}

}  // namespace pbs::model
