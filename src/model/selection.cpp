#include "model/selection.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace pbs::model {

namespace {

double median(std::vector<double>& v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace

CalibrationResult SelectionModel::calibrate(
    std::span<const PerfSample> samples) {
  // Invert each prediction through the constants it was made with (the
  // sample's own, falling back to this model's for samples that did not
  // record them) to get the underated roofline estimate;
  // achieved/underated is that sample's observed derating for its family.
  std::vector<double> pb_obs;
  std::vector<double> col_obs;
  for (const PerfSample& s : samples) {
    if (s.predicted_mflops <= 0 || s.achieved_mflops <= 0 || s.cf <= 0) {
      continue;
    }
    if (s.algo == "pb") {
      const double eff_at_prediction =
          s.pb_efficiency > 0 ? s.pb_efficiency : pb_efficiency;
      const double underated = s.predicted_mflops / eff_at_prediction;
      pb_obs.push_back(
          std::clamp(s.achieved_mflops / underated, 0.01, 1.0));
    } else {
      // The column families were predicted with efficiency
      // cf/(cf + penalty); solve the observed efficiency back for the
      // penalty that would have produced it at this sample's cf.
      const double penalty_at_prediction = s.column_latency_penalty > 0
                                               ? s.column_latency_penalty
                                               : column_latency_penalty;
      const double eff_pred = s.cf / (s.cf + penalty_at_prediction);
      const double underated = s.predicted_mflops / eff_pred;
      const double eff_obs =
          std::clamp(s.achieved_mflops / underated, 1e-3, 0.999);
      col_obs.push_back(s.cf * (1.0 - eff_obs) / eff_obs);
    }
  }

  CalibrationResult r;
  r.pb_samples = static_cast<int>(pb_obs.size());
  r.column_samples = static_cast<int>(col_obs.size());
  if (!pb_obs.empty()) pb_efficiency = median(pb_obs);
  if (!col_obs.empty()) {
    column_latency_penalty = std::clamp(median(col_obs), 0.0, 1e3);
  }
  r.pb_efficiency = pb_efficiency;
  r.column_latency_penalty = column_latency_penalty;
  r.changed = !pb_obs.empty() || !col_obs.empty();
  return r;
}

AlgoChoice select_algorithm(double cf, nnz_t flop, bool hash_available,
                            const SelectionModel& m, const MaskModel& mask) {
  AlgoChoice choice;
  choice.cf = std::max(cf, 1.0);  // cf < 1 is an estimator artifact

  // A plain mask caps the surviving output at nnz(mask) and lets the
  // Gustavson row loops skip every wedge whose output row has no mask
  // entry; a complemented mask constrains nothing a priori.  coverage is
  // floored so an (degenerate) empty mask reads as "column family does
  // essentially no work" rather than dividing by zero.
  const bool capping = mask.present && !mask.complement;
  double coverage = 1.0;
  choice.cf_out = choice.cf;
  if (capping) {
    const double nnz_est =
        std::max(static_cast<double>(flop) / choice.cf, 1.0);
    const double nnz_out = std::min(
        nnz_est, static_cast<double>(std::max<nnz_t>(mask.mask_nnz, 1)));
    choice.cf_out = static_cast<double>(flop) / nnz_out;
    coverage = std::clamp(mask.coverage, 1e-9, 1.0);
  }

  choice.ai_outer =
      capping ? ai_outer_lower_masked(choice.cf, choice.cf_out,
                                      m.bytes_per_nnz, m.pb_tuple_bytes)
              : ai_outer_lower_tuple(choice.cf, m.bytes_per_nnz,
                                     m.pb_tuple_bytes);
  choice.ai_column =
      capping ? ai_column_lower_masked(choice.cf, choice.cf_out,
                                       m.bytes_per_nnz)
              : ai_column_lower(choice.cf, m.bytes_per_nnz);

  const double pb_eff = m.effective_pb_efficiency();
  // Accumulator reuse is flop per surviving output entry, so the latency
  // derating runs on cf_out (== cf unmasked).
  const double col_eff = choice.cf_out / (choice.cf_out + m.column_latency_penalty);
  // Fused expand masking (pb::ExpandMaskMode): at or below the density
  // threshold PB's scatter loops skip generating masked-out tuples, so in
  // nominal-flop terms PB is credited the tuples it never expands — the
  // outer-product mirror of the column family's 1/coverage credit below.
  // Dense masks keep the cheap post-compress drop and earn no credit.
  double expand_mask_credit = 1.0;
  if (mask.present && mask.kept_density < 1.0 &&
      mask.kept_density <= m.expand_mask_density_max) {
    expand_mask_credit = 1.0 / std::clamp(mask.kept_density, 1e-9, 1.0);
  }
  choice.pb_mflops = attainable_gflops(m.beta_gbs, choice.ai_outer) * pb_eff *
                     1e3 * expand_mask_credit;
  // In nominal-flop terms the column family is credited the wedges its
  // masked row loops never execute (1/coverage ≥ 1; exactly 1 unmasked).
  choice.column_mflops = attainable_gflops(m.beta_gbs, choice.ai_column) *
                         col_eff * 1e3 / coverage;

  // Wedges outside the mask are skipped work for every family's setup
  // consideration: gate the small-problem cutoff on what actually runs.
  const auto effective_flop =
      static_cast<nnz_t>(static_cast<double>(flop) * coverage);

  const std::string column_algo = hash_available ? "hash" : "heap";
  std::ostringstream why;
  if (effective_flop < m.small_flop_threshold) {
    choice.algo = "heap";
    why << "flop " << effective_flop << " < " << m.small_flop_threshold
        << ": pipeline setup would dominate; low-overhead heap";
  } else if (choice.pb_mflops >= choice.column_mflops) {
    choice.algo = "pb";
    why << "cf " << choice.cf << ": derated outer bound " << choice.pb_mflops
        << " MFLOPS >= column " << choice.column_mflops
        << "; bandwidth-optimized pb";
  } else {
    choice.algo = column_algo;
    why << "cf " << choice.cf << ": derated column bound "
        << choice.column_mflops << " MFLOPS > outer " << choice.pb_mflops
        << "; Gustavson " << column_algo;
  }
  if (mask.present) {
    why << (mask.complement ? "; complemented mask (no flop cap)"
                            : "; mask caps output") ;
    if (capping) {
      why << " (cf_out " << choice.cf_out << ", wedge coverage " << coverage
          << ")";
    }
    if (expand_mask_credit > 1.0) {
      why << "; expand-mask credit " << expand_mask_credit
          << "x (kept density " << mask.kept_density << ")";
    }
  }
  choice.rationale = why.str();
  return choice;
}

}  // namespace pbs::model
