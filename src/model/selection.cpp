#include "model/selection.hpp"

#include <algorithm>
#include <sstream>

namespace pbs::model {

AlgoChoice select_algorithm(double cf, nnz_t flop, bool hash_available,
                            const SelectionModel& m) {
  AlgoChoice choice;
  choice.cf = std::max(cf, 1.0);  // cf < 1 is an estimator artifact
  choice.ai_outer =
      ai_outer_lower_tuple(choice.cf, m.bytes_per_nnz, m.pb_tuple_bytes);
  choice.ai_column = ai_column_lower(choice.cf, m.bytes_per_nnz);

  const double pb_eff = m.pb_efficiency;
  const double col_eff = choice.cf / (choice.cf + m.column_latency_penalty);
  choice.pb_mflops =
      attainable_gflops(m.beta_gbs, choice.ai_outer) * pb_eff * 1e3;
  choice.column_mflops =
      attainable_gflops(m.beta_gbs, choice.ai_column) * col_eff * 1e3;

  const std::string column_algo = hash_available ? "hash" : "heap";
  std::ostringstream why;
  if (flop < m.small_flop_threshold) {
    choice.algo = "heap";
    why << "flop " << flop << " < " << m.small_flop_threshold
        << ": pipeline setup would dominate; low-overhead heap";
  } else if (choice.pb_mflops >= choice.column_mflops) {
    choice.algo = "pb";
    why << "cf " << choice.cf << ": derated outer bound " << choice.pb_mflops
        << " MFLOPS >= column " << choice.column_mflops
        << "; bandwidth-optimized pb";
  } else {
    choice.algo = column_algo;
    why << "cf " << choice.cf << ": derated column bound "
        << choice.column_mflops << " MFLOPS > outer " << choice.pb_mflops
        << "; Gustavson " << column_algo;
  }
  choice.rationale = why.str();
  return choice;
}

}  // namespace pbs::model
