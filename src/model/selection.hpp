// Roofline-guided algorithm selection (paper Sec. II-C applied forward).
//
// The paper's model bounds what each SpGEMM family can attain from the
// compression factor cf alone: outer-product ESC (PB) is limited by Eq. 4,
// column/row Gustavson (hash, heap) by Eq. 3.  The *bounds* alone always
// favor the column family (its denominator is smaller), but the two
// families sit differently below their bounds: PB's phases all stream
// memory and sustain a large, cf-independent fraction of STREAM bandwidth
// (Figs. 6/7b/9b), while Gustavson kernels are latency-bound on irregular
// accumulator access at low cf and only approach their bound as rising cf
// buys accumulator reuse (Figs. 7a/9a: hash loses to PB at cf ≈ 1-2 and
// wins on high-compression inputs).  Derating each bound by that measured
// efficiency reproduces the paper's crossover:
//
//   perf_pb(cf)     = pb_efficiency · β · AI_outer(cf)
//   perf_column(cf) = cf/(cf + column_latency_penalty) · β · AI_column(cf)
//
// With the defaults below the crossover sits at cf ≈ 2.2.  β cancels in
// the comparison, so selection needs no STREAM run; it only scales the
// absolute MFLOPS estimates reported for telemetry.
//
// The compression factor is *estimated* before the multiplication ever
// runs (pb::pb_estimate_nnz_c's balls-into-bins model over the symbolic
// phase's per-row flop counts), which is what lets a plan select its
// algorithm at build time.  PB's Eq. 4 bound additionally charges the Cˆ
// write+read term the bytes the plan's tuple format actually moves
// (pb_tuple_bytes: 16 wide, 12 narrow, 8 key-only/f32 — see pb/tuple.hpp
// and pb::predict_tuple_format), so the compressed streams' higher bounds
// shift the crossover toward higher cf: with defaults it sits at cf ≈ 2.2
// at 16 B, ≈ 3.0 at 12 B and ≈ 7.7 at 8 B — a value-free (boolean)
// workload keeps PB competitive well past where a valued one switches to
// hash.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"
#include "model/roofline.hpp"

namespace pbs::model {

/// One measured prediction/achievement pair from a fingerprint-verified
/// execute: what the roofline model promised for the chosen algorithm at
/// the estimated cf, and what the run sustained.  The executor and plan
/// layers record these (unmasked "auto" runs only — a mask changes both
/// bounds, so masked samples would fold the mask term into the derating
/// constants); SelectionModel::calibrate refits from them.
struct PerfSample {
  std::string algo;  ///< the resolved algorithm ("pb", "hash", "heap")
  double cf = 0;     ///< estimated compression factor the choice used
  double predicted_mflops = 0;
  double achieved_mflops = 0;
  /// The derating constants in effect when the prediction was made —
  /// calibrate() inverts each prediction through THESE to recover the
  /// underated roofline estimate (samples from ops with customized or
  /// already-calibrated models would otherwise skew the fit).  0 = "use
  /// the calibrating model's own constants" (correct when all samples
  /// came from that model).
  double pb_efficiency = 0;
  double column_latency_penalty = 0;
};

/// What a calibrate() pass did: how many samples informed each family and
/// the constants in effect afterwards.  `changed` is false when no usable
/// samples existed (the model is left untouched).
struct CalibrationResult {
  int pb_samples = 0;
  int column_samples = 0;
  double pb_efficiency = 0;
  double column_latency_penalty = 0;
  bool changed = false;
};

/// β used for absolute performance estimates when the caller has no
/// measured STREAM figure.  The *choice* is β-independent.
inline constexpr double kDefaultBetaGbs = 20.0;

/// Tunables of the selection heuristic, exposed so benches and tests can
/// probe the crossover.  Defaults are calibrated against the paper's
/// single-socket figures (7, 9, 11).
struct SelectionModel {
  double beta_gbs = kDefaultBetaGbs;
  double bytes_per_nnz = kDefaultBytesPerNnz;

  /// Bytes each tuple of PB's expanded stream moves — the Cˆ term of
  /// Eq. 4.  16 for the wide AoS format; 12 when the plan's narrow SoA
  /// format engages; 8 for the key-only (value-free semirings) and
  /// narrow-f32 streams (pb/tuple.hpp; pb::predict_tuple_format tells a
  /// caller which to expect before any symbolic work).  Lowering it
  /// raises PB's bound, moving the pb/hash crossover toward higher cf.
  double pb_tuple_bytes = kDefaultBytesPerNnz;

  /// Fraction of its roofline bound PB sustains (its phases stream at
  /// near-STREAM bandwidth regardless of cf).
  double pb_efficiency = 0.85;

  /// Multiplier on pb_efficiency when the pipelined schedule will run
  /// (pb::PbSchedule::kPipeline resolved for the execution's thread
  /// count): per-bin dataflow hides the fork-join tails and sorts bins
  /// cache-hot, recovering a slice of the barrier schedule's idle time.
  /// The product is capped at 0.98 — no schedule streams above the
  /// machine.  Callers set pipelined_schedule; the default (false) keeps
  /// every existing selection bit-identical.
  double pb_pipeline_boost = 1.06;
  bool pipelined_schedule = false;

  /// pb_efficiency with the schedule term applied — what
  /// select_algorithm actually derates PB's bound by.
  [[nodiscard]] double effective_pb_efficiency() const {
    const double e =
        pipelined_schedule ? pb_efficiency * pb_pipeline_boost : pb_efficiency;
    return e < 0.98 ? e : 0.98;
  }

  /// Gustavson efficiency model cf/(cf + penalty): latency-bound hash
  /// probes at low cf, approaching the bound as reuse grows.
  double column_latency_penalty = 2.3;

  /// Below this flop count pipeline setup (binning, parallel regions)
  /// dominates any bandwidth advantage; pick the low-overhead heap.
  nnz_t small_flop_threshold = 32768;

  /// Kept-side mask density at or below which PB's fused expand mask
  /// engages (mirror of pb::PbConfig::expand_mask_max_density — keep the
  /// two in sync or the model credits a path that will not run): sparse
  /// masks let PB skip tuple generation in the scatter loop, so its
  /// estimate is credited the skipped tuples; dense masks keep the cheap
  /// post-compress drop and earn no credit.
  double expand_mask_density_max = 0.05;

  /// Refits the two per-family derating constants — pb_efficiency and
  /// column_latency_penalty — from recorded predicted-vs-achieved pairs,
  /// closing the telemetry loop: each sample's prediction is inverted
  /// through the *current* constants to recover the underated roofline
  /// estimate, the achieved figure gives that sample's observed derating,
  /// and the per-family median (robust to warm-up and noise outliers)
  /// becomes the new constant.  Families with no usable samples keep
  /// their current constant; samples with non-positive fields are
  /// skipped.  The defaults stay calibrated against the paper's figures;
  /// this replaces them with *this machine's* measured efficiencies
  /// (pbs_cli calibrate, or SpGemmExecutor's warmup refit).
  CalibrationResult calibrate(std::span<const PerfSample> samples);
};

/// What the selection model knows about a fused output mask (SpGemmOp).
/// Defaults describe "no mask", under which the masked bounds degenerate
/// exactly to Eq. 3/4 and the choice is unchanged.
struct MaskModel {
  bool present = false;
  bool complement = false;
  /// Masked wedge count / flop: the fraction of the flop whose output row
  /// has any mask entry.  A plain (non-complemented) mask lets the
  /// Gustavson row loops skip the other (1 − coverage) outright, while PB
  /// still expands every flop and filters at compress.  Complemented
  /// masks skip nothing (coverage stays 1).
  double coverage = 1.0;
  /// nnz(mask): cap on surviving output nonzeros for a plain mask.
  nnz_t mask_nnz = 0;
  /// Density of the *kept* side — nnz(mask)/cells, complement-flipped —
  /// the quantity PB's ExpandMaskMode::kAuto gates on.  1.0 ("dense")
  /// leaves PB's estimate uncredited.
  double kept_density = 1.0;
};

/// The decision plus everything needed to explain it in telemetry.
struct AlgoChoice {
  std::string algo;          ///< "pb", "hash" or "heap"
  double cf = 0;             ///< the (estimated) compression factor used
  double cf_out = 0;         ///< flop per *surviving* output nonzero
                             ///< (== cf without a plain mask)
  double ai_outer = 0;       ///< Eq. 4 bound at cf (flops/byte)
  double ai_column = 0;      ///< Eq. 3 bound at cf
  double pb_mflops = 0;      ///< derated estimate at beta_gbs
  double column_mflops = 0;  ///< derated estimate at beta_gbs
  std::string rationale;     ///< one human-readable line for telemetry/CLI
};

/// Picks pb / hash / heap for a multiplication with estimated compression
/// factor `cf` and `flop` total multiplications.  `hash_available` is
/// false when the requested semiring rules hash out; the column family is
/// then represented by heap.  With a mask the bounds split into input
/// (cf) and output (cf_out, capped by nnz(mask)) terms and the column
/// family's estimate is credited the wedges its masked row loops skip —
/// so a dense mask reproduces the unmasked decision and a sparse mask
/// shifts the crossover toward the Gustavson kernels.
AlgoChoice select_algorithm(double cf, nnz_t flop, bool hash_available,
                            const SelectionModel& m = {},
                            const MaskModel& mask = {});

}  // namespace pbs::model
