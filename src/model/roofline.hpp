// The paper's Roofline performance model for SpGEMM (Sec. II-C, Fig. 3).
//
// Arithmetic intensity (flops per byte) for a multiplication with
// compression factor cf and b bytes per stored nonzero:
//
//   Eq. 1 (upper bound, inputs+output read/written once):
//       AI ≤ cf / b
//   Eq. 3 (column SpGEMM lower bound; A re-read flop times):
//       AI ≥ cf / ((2 + cf) · b)
//   Eq. 4 (outer-product ESC lower bound; Cˆ written + read):
//       AI ≥ cf / ((3 + 2·cf) · b)
//
// Attainable performance at bandwidth β is β·AI (Eq. 2).
#pragma once

#include <iosfwd>

namespace pbs::model {

inline constexpr double kDefaultBytesPerNnz = 16.0;  // 4+4 index, 8 value

/// Eq. 1 — the best any SpGEMM can do.
double ai_upper_bound(double cf, double bytes_per_nnz = kDefaultBytesPerNnz);

/// Eq. 3 — practical lower bound for column/row Gustavson algorithms.
double ai_column_lower(double cf, double bytes_per_nnz = kDefaultBytesPerNnz);

/// Eq. 4 — practical lower bound for outer-product ESC (PB-SpGEMM).
double ai_outer_lower(double cf, double bytes_per_nnz = kDefaultBytesPerNnz);

/// Eq. 4 generalized to a tuple stream narrower than the stored-nonzero
/// format: the (3·b)/cf input/output term keeps the COO cost b, but the
/// write-Cˆ-then-read-it term — 2 of the denominator's (3 + 2·cf)·b —
/// charges the bytes the expanded stream actually moves per tuple
/// (pb/tuple.hpp: 16 wide, 12 narrow, 8 key-only/f32).  With
/// tuple_bytes == bytes_per_nnz this reduces exactly to ai_outer_lower.
double ai_outer_lower_tuple(double cf, double bytes_per_nnz,
                            double tuple_bytes);

// Masked variants: a fused output mask shrinks the *output* stream without
// changing the input streams, so the single-cf bounds split their cf into
// cf (flop per input/unmasked nonzero — the 2 input matrices) and cf_out
// (flop per *surviving* output nonzero).  With cf_out == cf both reduce
// exactly to the unmasked bounds above — a dense mask degenerates to
// Eq. 3/4.

/// Eq. 4 with a fused mask: bytes/flop = 2·b/cf (read A, B) + b/cf_out
/// (write the masked C) + 2·t (write + read the full Cˆ tuple stream — the
/// PB pipeline expands every flop and drops masked-out tuples only at
/// compress).
double ai_outer_lower_masked(double cf, double cf_out, double bytes_per_nnz,
                             double tuple_bytes);

/// Eq. 3 with a fused mask: bytes/flop = b (A re-read flop times) + b/cf
/// (read B) + b/cf_out (write the masked C).
double ai_column_lower_masked(double cf, double cf_out, double bytes_per_nnz);

/// Eq. 2 — attainable GFLOPS at AI given STREAM bandwidth β (GB/s).
double attainable_gflops(double beta_gbs, double ai);

/// All three bounds and their attainable performance for one (β, cf) pair.
struct SpGemmBounds {
  double ai_upper, ai_column, ai_outer;        // flops / byte
  double perf_upper, perf_column, perf_outer;  // GFLOPS
};

SpGemmBounds bounds(double beta_gbs, double cf,
                    double bytes_per_nnz = kDefaultBytesPerNnz);

/// Prints the Fig. 3 content: the β·AI roofline over the paper's AI range
/// [1/128, 1/4] plus the three marked operating points for ER matrices
/// (cf = 1).
void print_fig3(std::ostream& os, double beta_gbs);

}  // namespace pbs::model
