#include "matrix/csr.hpp"

#include <cmath>

namespace pbs::mtx {

bool CsrMatrix::valid() const {
  if (nrows < 0 || ncols < 0) return false;
  if (rowptr.size() != static_cast<std::size_t>(nrows) + 1) return false;
  if (rowptr.front() != 0) return false;
  for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
    if (rowptr[r] > rowptr[r + 1]) return false;
    for (nnz_t i = rowptr[r]; i < rowptr[r + 1]; ++i) {
      if (colids[i] < 0 || colids[i] >= ncols) return false;
      if (i > rowptr[r] && colids[i - 1] >= colids[i]) return false;
    }
  }
  const auto n = static_cast<std::size_t>(rowptr.back());
  return colids.size() == n && vals.size() == n;
}

CsrMatrix CsrMatrix::identity(index_t n) {
  CsrMatrix m(n, n);
  m.colids.resize(n);
  m.vals.assign(n, 1.0);
  for (index_t i = 0; i < n; ++i) {
    m.rowptr[static_cast<std::size_t>(i) + 1] = i + 1;
    m.colids[i] = i;
  }
  return m;
}

CsrMatrix CsrMatrix::diagonal(std::span<const value_t> d) {
  const auto n = static_cast<index_t>(d.size());
  CsrMatrix m = identity(n);
  for (index_t i = 0; i < n; ++i) m.vals[i] = d[i];
  return m;
}

bool equal_exact(const CsrMatrix& a, const CsrMatrix& b) {
  return a.nrows == b.nrows && a.ncols == b.ncols && a.rowptr == b.rowptr &&
         a.colids == b.colids && a.vals == b.vals;
}

bool equal_approx(const CsrMatrix& a, const CsrMatrix& b, double rtol,
                  double atol) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) return false;
  if (a.rowptr != b.rowptr || a.colids != b.colids) return false;
  for (std::size_t i = 0; i < a.vals.size(); ++i) {
    if (std::abs(a.vals[i] - b.vals[i]) > atol + rtol * std::abs(b.vals[i]))
      return false;
  }
  return true;
}

}  // namespace pbs::mtx
