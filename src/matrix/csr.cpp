#include "matrix/csr.hpp"

#include <cmath>
#include <string>

#include "common/errors.hpp"

namespace pbs::mtx {

CsrValidation csr_validate(const CsrMatrix& m, ValuePolicy policy) {
  auto fail = [](std::string why) { return CsrValidation{false, std::move(why)}; };
  if (m.nrows < 0 || m.ncols < 0) {
    return fail("negative dimensions (" + std::to_string(m.nrows) + " x " +
                std::to_string(m.ncols) + ")");
  }
  if (m.rowptr.size() != static_cast<std::size_t>(m.nrows) + 1) {
    return fail("rowptr has " + std::to_string(m.rowptr.size()) +
                " entries, expected nrows + 1 = " +
                std::to_string(m.nrows + 1));
  }
  if (m.rowptr.front() != 0) {
    return fail("rowptr[0] = " + std::to_string(m.rowptr.front()) +
                ", expected 0");
  }
  const nnz_t n = m.rowptr.back();
  if (n < 0 || m.colids.size() != static_cast<std::size_t>(n) ||
      m.vals.size() != static_cast<std::size_t>(n)) {
    return fail("rowptr.back() = " + std::to_string(n) + " but colids/vals " +
                "hold " + std::to_string(m.colids.size()) + "/" +
                std::to_string(m.vals.size()) + " entries");
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(m.nrows); ++r) {
    if (m.rowptr[r] > m.rowptr[r + 1]) {
      return fail("rowptr not monotone at row " + std::to_string(r) + " (" +
                  std::to_string(m.rowptr[r]) + " > " +
                  std::to_string(m.rowptr[r + 1]) + ")");
    }
    for (nnz_t i = m.rowptr[r]; i < m.rowptr[r + 1]; ++i) {
      const index_t col = m.colids[static_cast<std::size_t>(i)];
      if (col < 0 || col >= m.ncols) {
        return fail("column id " + std::to_string(col) + " out of [0, " +
                    std::to_string(m.ncols) + ") at row " +
                    std::to_string(r) + ", entry " + std::to_string(i));
      }
      if (i > m.rowptr[r] &&
          m.colids[static_cast<std::size_t>(i) - 1] >= col) {
        return fail("column ids not strictly sorted in row " +
                    std::to_string(r) + " at entry " + std::to_string(i));
      }
      if (policy == ValuePolicy::kFinite &&
          !std::isfinite(m.vals[static_cast<std::size_t>(i)])) {
        return fail("non-finite value at row " + std::to_string(r) +
                    ", entry " + std::to_string(i));
      }
    }
  }
  return {};
}

void csr_validate_or_throw(const CsrMatrix& m, const std::string& what,
                           ValuePolicy policy) {
  const CsrValidation v = csr_validate(m, policy);
  if (!v.ok) throw ValidationError(what + ": " + v.error);
}

bool CsrMatrix::valid() const {
  if (nrows < 0 || ncols < 0) return false;
  if (rowptr.size() != static_cast<std::size_t>(nrows) + 1) return false;
  if (rowptr.front() != 0) return false;
  for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
    if (rowptr[r] > rowptr[r + 1]) return false;
    for (nnz_t i = rowptr[r]; i < rowptr[r + 1]; ++i) {
      if (colids[i] < 0 || colids[i] >= ncols) return false;
      if (i > rowptr[r] && colids[i - 1] >= colids[i]) return false;
    }
  }
  const auto n = static_cast<std::size_t>(rowptr.back());
  return colids.size() == n && vals.size() == n;
}

CsrMatrix CsrMatrix::identity(index_t n) {
  CsrMatrix m(n, n);
  m.colids.resize(n);
  m.vals.assign(n, 1.0);
  for (index_t i = 0; i < n; ++i) {
    m.rowptr[static_cast<std::size_t>(i) + 1] = i + 1;
    m.colids[i] = i;
  }
  return m;
}

CsrMatrix CsrMatrix::diagonal(std::span<const value_t> d) {
  const auto n = static_cast<index_t>(d.size());
  CsrMatrix m = identity(n);
  for (index_t i = 0; i < n; ++i) m.vals[i] = d[i];
  return m;
}

bool equal_exact(const CsrMatrix& a, const CsrMatrix& b) {
  return a.nrows == b.nrows && a.ncols == b.ncols && a.rowptr == b.rowptr &&
         a.colids == b.colids && a.vals == b.vals;
}

bool equal_approx(const CsrMatrix& a, const CsrMatrix& b, double rtol,
                  double atol) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) return false;
  if (a.rowptr != b.rowptr || a.colids != b.colids) return false;
  for (std::size_t i = 0; i < a.vals.size(); ++i) {
    if (std::abs(a.vals[i] - b.vals[i]) > atol + rtol * std::abs(b.vals[i]))
      return false;
  }
  return true;
}

}  // namespace pbs::mtx
