#include "matrix/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pbs::mtx {

namespace {

[[noreturn]] void fail(const std::string& name, long line,
                       const std::string& what) {
  throw std::runtime_error("matrix market: " + name + ":" +
                           std::to_string(line) + ": " + what);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

enum class Field { kReal, kInteger, kPattern };
enum class Symmetry { kGeneral, kSymmetric, kSkewSymmetric };

}  // namespace

CooMatrix read_matrix_market(std::istream& in, const std::string& name) {
  std::string line;
  long lineno = 0;

  if (!std::getline(in, line)) fail(name, 1, "empty file");
  ++lineno;
  std::istringstream header(line);
  std::string banner, object, format, field_s, symmetry_s;
  header >> banner >> object >> format >> field_s >> symmetry_s;
  if (banner != "%%MatrixMarket") fail(name, lineno, "missing %%MatrixMarket banner");
  if (lower(object) != "matrix") fail(name, lineno, "object is not 'matrix'");
  if (lower(format) != "coordinate")
    fail(name, lineno, "only 'coordinate' format is supported");

  Field field;
  const std::string f = lower(field_s);
  if (f == "real") field = Field::kReal;
  else if (f == "integer") field = Field::kInteger;
  else if (f == "pattern") field = Field::kPattern;
  else fail(name, lineno, "unsupported field '" + field_s + "'");

  Symmetry sym;
  const std::string s = lower(symmetry_s);
  if (s == "general") sym = Symmetry::kGeneral;
  else if (s == "symmetric") sym = Symmetry::kSymmetric;
  else if (s == "skew-symmetric") sym = Symmetry::kSkewSymmetric;
  else fail(name, lineno, "unsupported symmetry '" + symmetry_s + "'");

  // Skip comments, read the size line.
  long nrows = 0, ncols = 0;
  long long nentries = 0;
  for (;;) {
    if (!std::getline(in, line)) fail(name, lineno, "missing size line");
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream sz(line);
    if (!(sz >> nrows >> ncols >> nentries))
      fail(name, lineno, "malformed size line");
    break;
  }
  if (nrows < 0 || ncols < 0 || nentries < 0)
    fail(name, lineno, "negative dimension");
  // The library indexes with 32-bit index_t: a size line past that range
  // would silently truncate in the cast below and route every entry's
  // bounds check through wrong dimensions.
  constexpr long kMaxDim = std::numeric_limits<index_t>::max();
  if (nrows > kMaxDim || ncols > kMaxDim)
    fail(name, lineno,
         "dimension exceeds the 32-bit index limit (" +
             std::to_string(kMaxDim) + ")");

  CooMatrix coo(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  coo.reserve(sym == Symmetry::kGeneral ? nentries : 2 * nentries);

  for (long long k = 0; k < nentries; ++k) {
    if (!std::getline(in, line))
      fail(name, lineno, "unexpected end of file (expected " +
                             std::to_string(nentries) + " entries)");
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      --k;
      continue;
    }
    std::istringstream es(line);
    long r1 = 0, c1 = 0;
    double v = 1.0;
    if (!(es >> r1 >> c1)) fail(name, lineno, "malformed entry");
    if (field != Field::kPattern && !(es >> v))
      fail(name, lineno, "entry missing value");
    // Reject nan/inf at the boundary: downstream kernels assume ordinary
    // arithmetic (a NaN would silently poison compress merges), and a
    // file carrying them is corrupt far more often than intentional.
    if (!std::isfinite(v))
      fail(name, lineno, "non-finite value");
    if (r1 < 1 || r1 > nrows || c1 < 1 || c1 > ncols)
      fail(name, lineno, "index out of bounds");
    const auto r = static_cast<index_t>(r1 - 1);
    const auto c = static_cast<index_t>(c1 - 1);
    coo.add(r, c, v);
    if (r != c) {
      if (sym == Symmetry::kSymmetric) coo.add(c, r, v);
      if (sym == Symmetry::kSkewSymmetric) coo.add(c, r, -v);
    }
  }

  coo.canonicalize();
  return coo;
}

CooMatrix read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open " + path);
  return read_matrix_market(in, path);
}

void write_matrix_market(std::ostream& out, const CooMatrix& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.nrows << " " << coo.ncols << " " << coo.nnz() << "\n";
  out.precision(17);
  for (nnz_t i = 0; i < coo.nnz(); ++i) {
    out << coo.row[i] + 1 << " " << coo.col[i] + 1 << " " << coo.val[i]
        << "\n";
  }
}

void write_matrix_market(const std::string& path, const CooMatrix& coo) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot open " + path);
  write_matrix_market(out, coo);
}

}  // namespace pbs::mtx
