// Multiplication statistics: the quantities the paper's model runs on.
//
//  * flop  — number of scalar multiplications of C = A·B
//            (paper: "floating point operations only denote multiplications")
//  * nnz(C) — output nonzeros, computed by a symbolic row-wise pass
//  * cf    — compression factor flop / nnz(C) (paper Sec. II-A)
//
// These feed Table VI, the Roofline bounds (Eqs. 1, 3, 4), and the per-run
// telemetry of every bench.
#pragma once

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace pbs::mtx {

/// flop of A·B from the outer-product view: Σ_i nnz(A(:,i)) · nnz(B(i,:)).
/// O(k) — streams only the two pointer arrays, like the paper's Algorithm 3.
nnz_t count_flops(const CscMatrix& a, const CsrMatrix& b);

/// Same value computed row-wise from two CSR operands:
/// Σ_r Σ_{k in A(r,:)} nnz(B(k,:)).  O(nnz(A)).
nnz_t count_flops(const CsrMatrix& a, const CsrMatrix& b);

/// nnz(A·B) via a hash-set symbolic pass (row-wise, OpenMP-parallel).
nnz_t symbolic_nnz(const CsrMatrix& a, const CsrMatrix& b);

/// The Table VI row for squaring `a` (the paper's evaluation squares every
/// real matrix).
struct SquareStats {
  index_t n = 0;
  nnz_t nnz = 0;
  double d = 0;       ///< nnz / n
  nnz_t flops = 0;    ///< flop of A·A
  nnz_t nnz_c = 0;    ///< nnz(A·A)
  double cf = 0;      ///< flops / nnz_c
};

SquareStats square_stats(const CsrMatrix& a);

/// Degree-distribution and work-imbalance summary.  The paper attributes
/// PB-SpGEMM's weaker R-MAT scaling (Figs. 9b, 12, 13) to "highly skewed
/// nonzero and flop distributions"; these numbers quantify that skew for
/// any input.
struct DegreeStats {
  nnz_t min_degree = 0;
  nnz_t max_degree = 0;
  double mean_degree = 0;
  nnz_t p99_degree = 0;   ///< 99th-percentile row degree
  /// max over rows of (row flop of A·A) divided by the mean row flop —
  /// 1.0 is perfectly balanced; R-MAT hubs push it into the thousands.
  double flop_imbalance = 0;
};

DegreeStats degree_stats(const CsrMatrix& a);

}  // namespace pbs::mtx
