// Synthetic matrix generators used throughout the paper's evaluation.
//
//  * Erdős–Rényi (ER): d nonzeros uniformly distributed in each column
//    (paper Sec. II-A).  R-MAT with a=b=c=d=0.25 is equivalent in
//    expectation; we generate ER directly for exact per-column degrees.
//  * R-MAT: recursive quadrant sampling with the Graph500 parameters
//    a=0.57, b=c=0.19, d=0.05 (paper Sec. IV-C calls these "RMAT").
//  * Banded: nonzeros clustered within a diagonal band — the structured
//    surrogate for FEM-style SuiteSparse matrices (see surrogates.hpp).
//
// All generators are deterministic in (seed) and independent of the OpenMP
// thread count: work is split into fixed-size blocks, each with its own
// counter-based RNG stream.
#pragma once

#include <cstdint>

#include "matrix/coo.hpp"

namespace pbs::mtx {

/// Matrix of `2^scale` rows/cols with `edge_factor` nonzeros per column on
/// average — the paper's "scale k, edge factor f" parameterization.
struct RandomScale {
  int scale = 16;
  double edge_factor = 8.0;
};

/// ER matrix: every column holds round-ish `d` nonzeros at uniformly random
/// distinct rows.  Values uniform in (0, 1].
CooMatrix generate_er(index_t nrows, index_t ncols, double d,
                      std::uint64_t seed);

/// Convenience: square ER from scale/edge-factor.
CooMatrix generate_er(const RandomScale& p, std::uint64_t seed);

struct RmatParams {
  int scale = 16;
  double edge_factor = 8.0;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool scramble_ids = false;  ///< Graph500-style vertex permutation
  std::uint64_t seed = 1;
};

/// R-MAT matrix.  Duplicate edges are merged, so nnz <= edge_factor * n —
/// same convention as the Graph500 generator the paper's baselines use.
CooMatrix generate_rmat(const RmatParams& p);

/// Banded matrix: each column j holds ~d nonzeros at distinct random rows
/// within [j - halfwidth, j + halfwidth] (clamped at the edges).
CooMatrix generate_banded(index_t n, double d, index_t halfwidth,
                          std::uint64_t seed);

/// SplitMix64 — the counter-based PRNG all generators derive streams from.
/// Public so tests can reproduce sub-streams.
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in (0, 1].
  double next_unit() {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }
};

}  // namespace pbs::mtx
