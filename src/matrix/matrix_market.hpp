// Matrix Market (.mtx) reader/writer.
//
// The paper's Table VI / Fig. 11 matrices come from the SuiteSparse Matrix
// Collection, which distributes Matrix Market files.  The reader supports
// `coordinate` matrices with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry — enough for all twelve
// matrices in the paper.  When the files are unavailable (offline), the
// surrogate generators in surrogates.hpp stand in; see DESIGN.md §3.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"

namespace pbs::mtx {

/// Parses a Matrix Market file.  Throws std::runtime_error with a
/// line-numbered message on malformed input.  Symmetric/skew entries are
/// mirrored; the result is canonical COO.
CooMatrix read_matrix_market(const std::string& path);

/// Stream variant (used by tests to parse in-memory files).
CooMatrix read_matrix_market(std::istream& in, const std::string& name = "<stream>");

/// Writes canonical COO as `matrix coordinate real general`.
void write_matrix_market(const std::string& path, const CooMatrix& coo);
void write_matrix_market(std::ostream& out, const CooMatrix& coo);

}  // namespace pbs::mtx
