#include "matrix/convert.hpp"

#include <cassert>
#include <utility>

#include "common/prefix_sum.hpp"

namespace pbs::mtx {

namespace {

// Shared core of csr_to_csc / transpose: counting sort of CSR entries by
// column.  Writes colptr/rowids/vals of the column-major view of `a`.
void csr_columns_histogram(const CsrMatrix& a, std::vector<nnz_t>& colptr) {
  colptr.assign(static_cast<std::size_t>(a.ncols) + 1, 0);
  // Count entries per column.  The +1 shift lets the scan land directly in
  // final colptr form without a second buffer.
  for (nnz_t i = 0; i < a.nnz(); ++i) ++colptr[a.colids[i]];
  exclusive_scan_inplace(colptr.data(), static_cast<std::size_t>(a.ncols));
}

}  // namespace

CsrMatrix coo_to_csr(const CooMatrix& coo) {
  assert(coo.is_canonical());
  CsrMatrix out(coo.nrows, coo.ncols);
  const auto n = static_cast<std::size_t>(coo.nnz());
  out.colids.resize(n);
  out.vals.resize(n);

  std::vector<nnz_t> counts(static_cast<std::size_t>(coo.nrows) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++counts[coo.row[i]];
  exclusive_scan_inplace(counts.data(), static_cast<std::size_t>(coo.nrows));
  out.rowptr = counts;

  // Canonical COO is already row-major sorted: a straight copy suffices.
  for (std::size_t i = 0; i < n; ++i) {
    out.colids[i] = coo.col[i];
    out.vals[i] = coo.val[i];
  }
  return out;
}

CscMatrix coo_to_csc(const CooMatrix& coo) {
  assert(coo.is_canonical());
  CscMatrix out(coo.nrows, coo.ncols);
  const auto n = static_cast<std::size_t>(coo.nnz());
  out.rowids.resize(n);
  out.vals.resize(n);

  std::vector<nnz_t> next(static_cast<std::size_t>(coo.ncols) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++next[coo.col[i]];
  exclusive_scan_inplace(next.data(), static_cast<std::size_t>(coo.ncols));
  out.colptr = next;

  // Row-major iteration scatters rows into each column in ascending order,
  // so columns come out sorted.
  for (std::size_t i = 0; i < n; ++i) {
    const nnz_t dst = next[coo.col[i]]++;
    out.rowids[dst] = coo.row[i];
    out.vals[dst] = coo.val[i];
  }
  return out;
}

CooMatrix csr_to_coo(const CsrMatrix& a) {
  CooMatrix out(a.nrows, a.ncols);
  out.reserve(a.nnz());
  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      out.add(r, a.colids[i], a.vals[i]);
    }
  }
  return out;
}

CscMatrix csr_to_csc(const CsrMatrix& a) {
  CscMatrix out(a.nrows, a.ncols);
  const auto n = static_cast<std::size_t>(a.nnz());
  out.rowids.resize(n);
  out.vals.resize(n);

  std::vector<nnz_t> next;
  csr_columns_histogram(a, next);
  out.colptr = next;

  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const nnz_t dst = next[a.colids[i]]++;
      out.rowids[dst] = r;
      out.vals[dst] = a.vals[i];
    }
  }
  return out;
}

CsrMatrix csc_to_csr(const CscMatrix& a) {
  CsrMatrix out(a.nrows, a.ncols);
  const auto n = static_cast<std::size_t>(a.nnz());
  out.colids.resize(n);
  out.vals.resize(n);

  std::vector<nnz_t> next(static_cast<std::size_t>(a.nrows) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++next[a.rowids[i]];
  exclusive_scan_inplace(next.data(), static_cast<std::size_t>(a.nrows));
  out.rowptr = next;

  for (index_t c = 0; c < a.ncols; ++c) {
    for (nnz_t i = a.colptr[c]; i < a.colptr[static_cast<std::size_t>(c) + 1]; ++i) {
      const nnz_t dst = next[a.rowids[i]]++;
      out.colids[dst] = c;
      out.vals[dst] = a.vals[i];
    }
  }
  return out;
}

CsrMatrix transpose(const CsrMatrix& a) {
  // Aᵀ in CSR has the same layout as A in CSC with rows/cols swapped.
  CscMatrix csc = csr_to_csc(a);
  CsrMatrix out;
  out.nrows = a.ncols;
  out.ncols = a.nrows;
  out.rowptr = std::move(csc.colptr);
  out.colids = std::move(csc.rowids);
  out.vals = std::move(csc.vals);
  return out;
}

}  // namespace pbs::mtx
