#include "matrix/csc.hpp"

namespace pbs::mtx {

bool CscMatrix::valid() const {
  if (nrows < 0 || ncols < 0) return false;
  if (colptr.size() != static_cast<std::size_t>(ncols) + 1) return false;
  if (colptr.front() != 0) return false;
  for (std::size_t c = 0; c < static_cast<std::size_t>(ncols); ++c) {
    if (colptr[c] > colptr[c + 1]) return false;
    for (nnz_t i = colptr[c]; i < colptr[c + 1]; ++i) {
      if (rowids[i] < 0 || rowids[i] >= nrows) return false;
      if (i > colptr[c] && rowids[i - 1] >= rowids[i]) return false;
    }
  }
  const auto n = static_cast<std::size_t>(colptr.back());
  return rowids.size() == n && vals.size() == n;
}

}  // namespace pbs::mtx
