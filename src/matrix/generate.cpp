#include "matrix/generate.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prefix_sum.hpp"

namespace pbs::mtx {

namespace {

// Columns are generated in fixed blocks so results do not depend on the
// OpenMP schedule or thread count.
constexpr index_t kColumnsPerBlock = 4096;

std::uint64_t block_seed(std::uint64_t seed, std::uint64_t block,
                         std::uint64_t salt) {
  SplitMix64 mix(seed ^ (block * 0x9E3779B97F4A7C15ull) ^ salt);
  return mix.next();
}

// Samples `want` distinct rows from [lo, hi) into out[]; small `want`
// (edge factors in the paper are <= 64) makes rejection sampling cheap.
int sample_distinct(SplitMix64& rng, index_t lo, index_t hi, int want,
                    index_t* out) {
  const auto range = static_cast<std::uint64_t>(hi - lo);
  const int take = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(want), range));
  int got = 0;
  while (got < take) {
    const auto r = static_cast<index_t>(lo + rng.next_below(range));
    bool fresh = true;
    for (int i = 0; i < got; ++i) {
      if (out[i] == r) {
        fresh = false;
        break;
      }
    }
    if (fresh) out[got++] = r;
  }
  return got;
}

// Per-column degree: floor(d) plus a Bernoulli(frac(d)) extra, so the mean
// degree is exactly d.
int column_degree(SplitMix64& rng, double d) {
  const auto base = static_cast<int>(std::floor(d));
  const double frac = d - base;
  return base + (rng.next_unit() <= frac ? 1 : 0);
}

// Generator core shared by ER and banded: per block of columns, a first RNG
// pass fixes per-column degrees (so buffer sizes are exact), a second pass
// draws the rows.  `window(j, lo, hi)` defines each column's row range.
template <typename WindowFn>
CooMatrix generate_columnwise(index_t nrows, index_t ncols, double d,
                              std::uint64_t seed, std::uint64_t salt,
                              WindowFn window) {
  const index_t nblocks =
      ncols == 0 ? 0 : (ncols + kColumnsPerBlock - 1) / kColumnsPerBlock;

  struct BlockOut {
    std::vector<index_t> row, col;
    std::vector<value_t> val;
  };
  std::vector<BlockOut> blocks(static_cast<std::size_t>(nblocks));

#pragma omp parallel for schedule(dynamic, 1)
  for (index_t blk = 0; blk < nblocks; ++blk) {
    SplitMix64 rng(block_seed(seed, static_cast<std::uint64_t>(blk), salt));
    const index_t lo_col = blk * kColumnsPerBlock;
    const index_t hi_col = std::min<index_t>(ncols, lo_col + kColumnsPerBlock);
    BlockOut& out = blocks[blk];
    out.row.reserve(static_cast<std::size_t>(
        std::ceil(d * (hi_col - lo_col)) + 16));

    std::vector<index_t> scratch(static_cast<std::size_t>(
        std::max(1, static_cast<int>(std::ceil(d)) + 1)));
    for (index_t j = lo_col; j < hi_col; ++j) {
      index_t lo = 0, hi = nrows;
      window(j, lo, hi);
      const int deg = column_degree(rng, d);
      if (static_cast<std::size_t>(deg) > scratch.size())
        scratch.resize(static_cast<std::size_t>(deg));
      const int got = sample_distinct(rng, lo, hi, deg, scratch.data());
      for (int i = 0; i < got; ++i) {
        out.row.push_back(scratch[i]);
        out.col.push_back(j);
        out.val.push_back(rng.next_unit());
      }
    }
  }

  CooMatrix coo(nrows, ncols);
  nnz_t total = 0;
  for (const auto& b : blocks) total += static_cast<nnz_t>(b.row.size());
  coo.reserve(total);
  for (auto& b : blocks) {
    coo.row.insert(coo.row.end(), b.row.begin(), b.row.end());
    coo.col.insert(coo.col.end(), b.col.begin(), b.col.end());
    coo.val.insert(coo.val.end(), b.val.begin(), b.val.end());
  }
  coo.canonicalize();
  return coo;
}

}  // namespace

CooMatrix generate_er(index_t nrows, index_t ncols, double d,
                      std::uint64_t seed) {
  return generate_columnwise(nrows, ncols, d, seed, /*salt=*/0xE5,
                             [](index_t, index_t&, index_t&) {});
}

CooMatrix generate_er(const RandomScale& p, std::uint64_t seed) {
  const auto n = static_cast<index_t>(index_t{1} << p.scale);
  return generate_er(n, n, p.edge_factor, seed);
}

CooMatrix generate_banded(index_t n, double d, index_t halfwidth,
                          std::uint64_t seed) {
  return generate_columnwise(
      n, n, d, seed, /*salt=*/0xBA,
      [n, halfwidth](index_t j, index_t& lo, index_t& hi) {
        lo = std::max<index_t>(0, j - halfwidth);
        hi = std::min<index_t>(n, j + halfwidth + 1);
      });
}

CooMatrix generate_rmat(const RmatParams& p) {
  const auto n = static_cast<index_t>(index_t{1} << p.scale);
  const auto nedges = static_cast<nnz_t>(p.edge_factor * static_cast<double>(n));
  constexpr nnz_t kEdgesPerBlock = 1 << 16;
  const nnz_t nblocks = (nedges + kEdgesPerBlock - 1) / kEdgesPerBlock;

  struct BlockOut {
    std::vector<index_t> row, col;
    std::vector<value_t> val;
  };
  std::vector<BlockOut> blocks(static_cast<std::size_t>(nblocks));

  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;

#pragma omp parallel for schedule(dynamic, 1)
  for (nnz_t blk = 0; blk < nblocks; ++blk) {
    SplitMix64 rng(
        block_seed(p.seed, static_cast<std::uint64_t>(blk), /*salt=*/0x47));
    const nnz_t lo = blk * kEdgesPerBlock;
    const nnz_t hi = std::min(nedges, lo + kEdgesPerBlock);
    BlockOut& out = blocks[blk];
    out.row.reserve(static_cast<std::size_t>(hi - lo));

    for (nnz_t e = lo; e < hi; ++e) {
      index_t r = 0, c = 0;
      for (int level = 0; level < p.scale; ++level) {
        const double u = rng.next_unit();
        // Quadrant choice: a = top-left, b = top-right, c = bottom-left,
        // d = bottom-right.
        const int bit_r = u > ab ? 1 : 0;
        const int bit_c = (u > p.a && u <= ab) || u > abc ? 1 : 0;
        r = (r << 1) | bit_r;
        c = (c << 1) | bit_c;
      }
      out.row.push_back(r);
      out.col.push_back(c);
      out.val.push_back(rng.next_unit());
    }
  }

  CooMatrix coo(n, n);
  nnz_t total = 0;
  for (const auto& b : blocks) total += static_cast<nnz_t>(b.row.size());
  coo.reserve(total);
  for (auto& b : blocks) {
    coo.row.insert(coo.row.end(), b.row.begin(), b.row.end());
    coo.col.insert(coo.col.end(), b.col.begin(), b.col.end());
    coo.val.insert(coo.val.end(), b.val.begin(), b.val.end());
  }

  if (p.scramble_ids) {
    // Bijective bit-mix keeps ids in [0, 2^scale) while destroying the
    // quadrant-induced locality, as the Graph500 generator does.
    const std::uint64_t mask = static_cast<std::uint64_t>(n) - 1;
    auto scramble = [&](index_t v) {
      std::uint64_t x = static_cast<std::uint64_t>(v);
      x = (x * 0x9E3779B97F4A7C15ull + p.seed) & mask;
      x = (x ^ (x >> (p.scale / 2 + 1))) & mask;
      x = (x * 5 + 1) & mask;
      return static_cast<index_t>(x);
    };
    // The multiply-add step above is only bijective for odd multipliers on
    // power-of-two domains; 0x...C15 is odd and *5+1 is a Weyl step, so the
    // composition is a permutation of [0, 2^scale).
    for (auto& r : coo.row) r = scramble(r);
    for (auto& c : coo.col) c = scramble(c);
  }

  coo.canonicalize();
  return coo;
}

}  // namespace pbs::mtx
