// Coordinate (COO) sparse matrix — the interchange format.
//
// Generators and the Matrix Market reader produce COO; algorithms consume
// CSR/CSC produced by the converters in convert.hpp.  PB-SpGEMM's expanded
// matrix Cˆ is *conceptually* COO too, but it lives in the packed
// {key, value} tuple form defined in pb/tuple.hpp for bandwidth reasons.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace pbs::mtx {

struct CooMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<value_t> val;

  CooMatrix() = default;
  CooMatrix(index_t r, index_t c) : nrows(r), ncols(c) {}

  [[nodiscard]] nnz_t nnz() const { return static_cast<nnz_t>(row.size()); }

  void reserve(nnz_t n);

  /// Appends one entry; duplicates allowed until canonicalize().
  void add(index_t r, index_t c, value_t v);

  /// Sorts entries row-major and sums duplicates, producing the canonical
  /// form every converter expects.  Uses the library radix sort.
  void canonicalize();

  /// True when entries are strictly sorted row-major with no duplicates.
  [[nodiscard]] bool is_canonical() const;

  /// All indices within [0, nrows) x [0, ncols)?
  [[nodiscard]] bool in_bounds() const;
};

}  // namespace pbs::mtx
