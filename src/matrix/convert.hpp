// Format conversions and transposition.
//
// All converters are counting-sort based (O(nnz + n)), OpenMP-parallel for
// the counting and scatter passes, and produce canonical (sorted, duplicate
// free) outputs given canonical inputs.
#pragma once

#include "matrix/coo.hpp"
#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace pbs::mtx {

/// COO (canonical) -> CSR.
CsrMatrix coo_to_csr(const CooMatrix& coo);

/// COO (canonical) -> CSC.
CscMatrix coo_to_csc(const CooMatrix& coo);

/// CSR -> COO (always canonical).
CooMatrix csr_to_coo(const CsrMatrix& a);

/// CSR -> CSC of the *same* matrix (column-major view).
CscMatrix csr_to_csc(const CsrMatrix& a);

/// CSC -> CSR of the same matrix.
CsrMatrix csc_to_csr(const CscMatrix& a);

/// Transpose: returns B = Aᵀ in CSR.
CsrMatrix transpose(const CsrMatrix& a);

}  // namespace pbs::mtx
