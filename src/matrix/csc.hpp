// Compressed Sparse Column matrix.
//
// PB-SpGEMM streams the first operand column-by-column (paper Algorithm 2
// takes A in CSC), so CSC is a first-class format here rather than "CSR of
// the transpose".
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pbs::mtx {

struct CscMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<nnz_t> colptr;    ///< size ncols + 1
  std::vector<index_t> rowids;  ///< size nnz, sorted within each column
  std::vector<value_t> vals;    ///< size nnz

  CscMatrix() : colptr{0} {}
  CscMatrix(index_t r, index_t c)
      : nrows(r), ncols(c), colptr(static_cast<std::size_t>(c) + 1, 0) {}

  [[nodiscard]] nnz_t nnz() const {
    return colptr.empty() ? 0 : colptr.back();
  }

  [[nodiscard]] double avg_degree() const {
    return ncols == 0 ? 0.0 : static_cast<double>(nnz()) / ncols;
  }

  [[nodiscard]] nnz_t col_nnz(index_t c) const {
    return colptr[static_cast<std::size_t>(c) + 1] - colptr[c];
  }

  [[nodiscard]] std::span<const index_t> col_rows(index_t c) const {
    return {rowids.data() + colptr[c], static_cast<std::size_t>(col_nnz(c))};
  }

  [[nodiscard]] std::span<const value_t> col_vals(index_t c) const {
    return {vals.data() + colptr[c], static_cast<std::size_t>(col_nnz(c))};
  }

  [[nodiscard]] bool valid() const;
};

}  // namespace pbs::mtx
