#include "matrix/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "matrix/convert.hpp"

namespace pbs::mtx {

namespace {

// Builds a CSR matrix by running `emit(row, push)` for every row, where
// `push(col, val)` appends entries in ascending column order.  Two-pass:
// count then fill, both trivially correct for any per-row emitter.
template <typename EmitFn>
CsrMatrix build_rowwise(index_t nrows, index_t ncols, EmitFn emit) {
  CsrMatrix out(nrows, ncols);
  for (index_t r = 0; r < nrows; ++r) {
    nnz_t count = 0;
    emit(r, [&](index_t, value_t) { ++count; });
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        out.rowptr[r] + count;
  }
  out.colids.resize(static_cast<std::size_t>(out.rowptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.rowptr.back()));
  for (index_t r = 0; r < nrows; ++r) {
    nnz_t pos = out.rowptr[r];
    emit(r, [&](index_t c, value_t v) {
      out.colids[pos] = c;
      out.vals[pos] = v;
      ++pos;
    });
  }
  return out;
}

}  // namespace

CsrMatrix hadamard(const CsrMatrix& a, const CsrMatrix& b) {
  assert(a.nrows == b.nrows && a.ncols == b.ncols);
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    nnz_t i = a.rowptr[r], j = b.rowptr[r];
    const nnz_t iend = a.rowptr[static_cast<std::size_t>(r) + 1];
    const nnz_t jend = b.rowptr[static_cast<std::size_t>(r) + 1];
    while (i < iend && j < jend) {
      if (a.colids[i] < b.colids[j]) ++i;
      else if (a.colids[i] > b.colids[j]) ++j;
      else {
        push(a.colids[i], a.vals[i] * b.vals[j]);
        ++i;
        ++j;
      }
    }
  });
}

CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, value_t alpha,
              value_t beta) {
  assert(a.nrows == b.nrows && a.ncols == b.ncols);
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    nnz_t i = a.rowptr[r], j = b.rowptr[r];
    const nnz_t iend = a.rowptr[static_cast<std::size_t>(r) + 1];
    const nnz_t jend = b.rowptr[static_cast<std::size_t>(r) + 1];
    while (i < iend || j < jend) {
      if (j == jend || (i < iend && a.colids[i] < b.colids[j])) {
        push(a.colids[i], alpha * a.vals[i]);
        ++i;
      } else if (i == iend || b.colids[j] < a.colids[i]) {
        push(b.colids[j], beta * b.vals[j]);
        ++j;
      } else {
        push(a.colids[i], alpha * a.vals[i] + beta * b.vals[j]);
        ++i;
        ++j;
      }
    }
  });
}

CsrMatrix tril(const CsrMatrix& a, index_t k) {
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      if (a.colids[i] < r + k) push(a.colids[i], a.vals[i]);
    }
  });
}

CsrMatrix triu(const CsrMatrix& a, index_t k) {
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      if (a.colids[i] > r + k) push(a.colids[i], a.vals[i]);
    }
  });
}

CsrMatrix prune(const CsrMatrix& a, value_t threshold) {
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      if (std::abs(a.vals[i]) >= threshold) push(a.colids[i], a.vals[i]);
    }
  });
}

CsrMatrix keep_top_k_per_row(const CsrMatrix& a, index_t k) {
  // Per row, find the magnitude cutoff of the k-th largest entry, then keep
  // entries above it (and among ties, the leftmost ones).
  std::vector<value_t> mags;
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    const nnz_t lo = a.rowptr[r], hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    const nnz_t len = hi - lo;
    if (len <= k) {
      for (nnz_t i = lo; i < hi; ++i) push(a.colids[i], a.vals[i]);
      return;
    }
    mags.resize(static_cast<std::size_t>(len));
    for (nnz_t i = lo; i < hi; ++i)
      mags[static_cast<std::size_t>(i - lo)] = std::abs(a.vals[i]);
    std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end(),
                     std::greater<>());
    const value_t cutoff = mags[static_cast<std::size_t>(k - 1)];
    index_t taken = 0;
    // Pass 1 entries strictly above the cutoff, then fill with ties.
    for (nnz_t i = lo; i < hi && taken < k; ++i) {
      if (std::abs(a.vals[i]) > cutoff) {
        push(a.colids[i], a.vals[i]);
        ++taken;
      }
    }
    for (nnz_t i = lo; i < hi && taken < k; ++i) {
      if (std::abs(a.vals[i]) == cutoff) {
        push(a.colids[i], a.vals[i]);
        ++taken;
      }
    }
  });
}

CsrMatrix element_power(const CsrMatrix& a, double p) {
  CsrMatrix out = a;
  for (auto& v : out.vals) v = std::pow(v, p);
  return out;
}

CsrMatrix normalize_columns(const CsrMatrix& a) {
  const std::vector<value_t> sums = col_sums(a);
  CsrMatrix out = a;
  for (std::size_t i = 0; i < out.vals.size(); ++i) {
    const value_t s = sums[out.colids[i]];
    if (s != 0.0) out.vals[i] /= s;
  }
  return out;
}

CsrMatrix drop_diagonal(const CsrMatrix& a) {
  return build_rowwise(a.nrows, a.ncols, [&](index_t r, auto push) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      if (a.colids[i] != r) push(a.colids[i], a.vals[i]);
    }
  });
}

std::vector<value_t> spmv(const CsrMatrix& a, std::span<const value_t> x) {
  assert(static_cast<index_t>(x.size()) == a.ncols);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), 0.0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    value_t acc = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      acc += a.vals[i] * x[a.colids[i]];
    y[r] = acc;
  }
  return y;
}

std::vector<value_t> row_sums(const CsrMatrix& a) {
  std::vector<value_t> s(static_cast<std::size_t>(a.nrows), 0.0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    value_t acc = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      acc += a.vals[i];
    s[r] = acc;
  }
  return s;
}

std::vector<value_t> col_sums(const CsrMatrix& a) {
  std::vector<value_t> s(static_cast<std::size_t>(a.ncols), 0.0);
  for (std::size_t i = 0; i < a.vals.size(); ++i) s[a.colids[i]] += a.vals[i];
  return s;
}

value_t value_sum(const CsrMatrix& a) {
  value_t total = 0;
  for (value_t v : a.vals) total += v;
  return total;
}

value_t max_abs_diff(const CsrMatrix& a, const CsrMatrix& b) {
  const CsrMatrix d = add(a, b, 1.0, -1.0);
  value_t m = 0;
  for (value_t v : d.vals) m = std::max(m, std::abs(v));
  return m;
}

CsrMatrix symmetrize(const CsrMatrix& a) { return add(a, transpose(a)); }

CsrMatrix to_pattern(const CsrMatrix& a) {
  CsrMatrix out = a;
  std::fill(out.vals.begin(), out.vals.end(), 1.0);
  return out;
}

CsrMatrix pattern_filter(const CsrMatrix& a, const CsrMatrix& mask,
                         bool complement) {
  if (a.nrows != mask.nrows || a.ncols != mask.ncols) {
    throw std::invalid_argument("pattern_filter: shape mismatch");
  }
  CsrMatrix out(a.nrows, a.ncols);
  out.colids.reserve(static_cast<std::size_t>(a.nnz()));
  out.vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.nrows; ++r) {
    // Merge-scan the row against the sorted mask row; keep entries whose
    // membership matches the requested polarity.
    const auto mcols = mask.row_cols(r);
    std::size_t m = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t c = a.colids[i];
      while (m < mcols.size() && mcols[m] < c) ++m;
      const bool in_mask = m < mcols.size() && mcols[m] == c;
      if (in_mask != complement) {
        out.colids.push_back(c);
        out.vals.push_back(a.vals[i]);
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<nnz_t>(out.colids.size());
  }
  return out;
}

}  // namespace pbs::mtx
