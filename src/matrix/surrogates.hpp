// The paper's Table VI matrix suite.
//
// The twelve evaluation matrices come from the SuiteSparse Matrix
// Collection, which is not reachable offline.  This module provides, for
// each matrix:
//
//  * the *published* statistics (n, nnz, d, flop, nnz(C), cf) from Table VI
//    of the paper, used for paper-vs-measured comparison, and
//  * a *structured surrogate generator* whose output reproduces the
//    published n, nnz and — approximately — the compression factor of A²,
//    which is the property Fig. 11's conclusion depends on ("PB-SpGEMM wins
//    iff cf < 4", paper Sec. V-B / VI).
//
// Surrogate recipes (DESIGN.md §3):
//  * FEM / discretization matrices (2cubes_sphere, cage12, cant, hood,
//    majorbasis, mc2depi, offshore, scircuit, amazon0505) → banded matrices
//    with half-bandwidth w ≈ d² / (4·cf): a band of that width makes A²'s
//    row support ≈ 4w while flop/row ≈ d², reproducing cf.
//  * Near-collision-free matrices (m133-b3, patents_main) → ER (cf ≈ 1).
//  * web-Google → R-MAT with Graph500 skew (power-law degrees).
//
// If the environment variable PBS_MATRIX_DIR points to a directory with the
// real `<name>.mtx` files, those are loaded instead.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"

namespace pbs::mtx {

struct SuiteEntry {
  std::string name;
  // Published Table VI values.
  index_t n;
  nnz_t nnz;
  double d;
  nnz_t flops;
  nnz_t nnz_c;
  double cf;
};

/// The twelve Table VI matrices in the paper's order (ascending cf is the
/// Fig. 11 x-axis ordering; use sorted_by_cf()).
const std::vector<SuiteEntry>& table6_suite();

/// Suite sorted by ascending compression factor (Fig. 11 ordering).
std::vector<SuiteEntry> table6_sorted_by_cf();

/// Loads `<dir>/<name>.mtx` if PBS_MATRIX_DIR (or `dir_override`) provides
/// it, else builds the surrogate.  `shrink` divides the dimension (and
/// scales nnz along with it) so laptop-scale runs finish; shrink = 1 is the
/// paper-faithful size.  Returns the matrix in CSR with metadata about
/// which path was taken.
struct SuiteMatrix {
  SuiteEntry entry;        ///< published stats (unscaled)
  CsrMatrix matrix;        ///< the actual operand
  bool from_file = false;  ///< true when a real .mtx was loaded
};

SuiteMatrix load_suite_matrix(const SuiteEntry& entry, double shrink = 1.0,
                              std::optional<std::string> dir_override = {});

/// Finds a suite entry by name (exact match); throws if unknown.
const SuiteEntry& suite_entry(const std::string& name);

}  // namespace pbs::mtx
