// Compressed Sparse Row matrix.
//
// Row pointers are 64-bit (`nnz_t`): flop counts and expanded-tuple offsets
// overflow 32 bits long before matrices stop fitting in memory.  Column
// indices and values are the paper's 4-byte / 8-byte widths.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pbs::mtx {

struct CsrMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<nnz_t> rowptr;    ///< size nrows + 1
  std::vector<index_t> colids;  ///< size nnz, sorted within each row
  std::vector<value_t> vals;    ///< size nnz

  CsrMatrix() : rowptr{0} {}
  CsrMatrix(index_t r, index_t c)
      : nrows(r), ncols(c), rowptr(static_cast<std::size_t>(r) + 1, 0) {}

  [[nodiscard]] nnz_t nnz() const {
    return rowptr.empty() ? 0 : rowptr.back();
  }

  /// Average nonzeros per row — the paper's d(A).
  [[nodiscard]] double avg_degree() const {
    return nrows == 0 ? 0.0 : static_cast<double>(nnz()) / nrows;
  }

  [[nodiscard]] nnz_t row_nnz(index_t r) const {
    return rowptr[static_cast<std::size_t>(r) + 1] - rowptr[r];
  }

  [[nodiscard]] std::span<const index_t> row_cols(index_t r) const {
    return {colids.data() + rowptr[r], static_cast<std::size_t>(row_nnz(r))};
  }

  [[nodiscard]] std::span<const value_t> row_vals(index_t r) const {
    return {vals.data() + rowptr[r], static_cast<std::size_t>(row_nnz(r))};
  }

  /// Structural invariants: monotone rowptr, in-range sorted column ids,
  /// consistent array sizes.  Used by tests and debug assertions.
  [[nodiscard]] bool valid() const;

  /// n x n identity.
  static CsrMatrix identity(index_t n);

  /// Diagonal matrix from d.
  static CsrMatrix diagonal(std::span<const value_t> d);
};

/// Value acceptance policy of csr_validate.  kAny admits every double
/// (MinPlus/MaxMin legitimately carry ±inf); kFinite rejects NaN and
/// infinities — the right policy for numeric (+, ×) ingress and for
/// freshly parsed files.
enum class ValuePolicy { kAny, kFinite };

/// Diagnostic outcome of csr_validate: `ok`, or the first violation
/// described well enough to act on (row, index, observed value).
struct CsrValidation {
  bool ok = true;
  std::string error;

  explicit operator bool() const { return ok; }
};

/// Full structural audit of `m`: consistent array sizes, monotone
/// in-bounds rowptr, in-range strictly-sorted column ids per row, and —
/// under ValuePolicy::kFinite — finite values.  Unlike CsrMatrix::valid()
/// this reports WHERE the structure is broken, so ingress layers can
/// reject hostile or corrupt matrices with a usable diagnostic instead
/// of computing undefined results.
CsrValidation csr_validate(const CsrMatrix& m,
                           ValuePolicy policy = ValuePolicy::kAny);

/// Throwing form: raises ValidationError("<what>: <violation>") on the
/// first violation; returns normally on a well-formed matrix.
void csr_validate_or_throw(const CsrMatrix& m, const std::string& what,
                           ValuePolicy policy = ValuePolicy::kAny);

/// Exact structural + value equality.
bool equal_exact(const CsrMatrix& a, const CsrMatrix& b);

/// Same structure; values compared with |x-y| <= atol + rtol*|y|.
bool equal_approx(const CsrMatrix& a, const CsrMatrix& b, double rtol = 1e-12,
                  double atol = 1e-12);

}  // namespace pbs::mtx
