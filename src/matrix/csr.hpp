// Compressed Sparse Row matrix.
//
// Row pointers are 64-bit (`nnz_t`): flop counts and expanded-tuple offsets
// overflow 32 bits long before matrices stop fitting in memory.  Column
// indices and values are the paper's 4-byte / 8-byte widths.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pbs::mtx {

struct CsrMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<nnz_t> rowptr;    ///< size nrows + 1
  std::vector<index_t> colids;  ///< size nnz, sorted within each row
  std::vector<value_t> vals;    ///< size nnz

  CsrMatrix() : rowptr{0} {}
  CsrMatrix(index_t r, index_t c)
      : nrows(r), ncols(c), rowptr(static_cast<std::size_t>(r) + 1, 0) {}

  [[nodiscard]] nnz_t nnz() const {
    return rowptr.empty() ? 0 : rowptr.back();
  }

  /// Average nonzeros per row — the paper's d(A).
  [[nodiscard]] double avg_degree() const {
    return nrows == 0 ? 0.0 : static_cast<double>(nnz()) / nrows;
  }

  [[nodiscard]] nnz_t row_nnz(index_t r) const {
    return rowptr[static_cast<std::size_t>(r) + 1] - rowptr[r];
  }

  [[nodiscard]] std::span<const index_t> row_cols(index_t r) const {
    return {colids.data() + rowptr[r], static_cast<std::size_t>(row_nnz(r))};
  }

  [[nodiscard]] std::span<const value_t> row_vals(index_t r) const {
    return {vals.data() + rowptr[r], static_cast<std::size_t>(row_nnz(r))};
  }

  /// Structural invariants: monotone rowptr, in-range sorted column ids,
  /// consistent array sizes.  Used by tests and debug assertions.
  [[nodiscard]] bool valid() const;

  /// n x n identity.
  static CsrMatrix identity(index_t n);

  /// Diagonal matrix from d.
  static CsrMatrix diagonal(std::span<const value_t> d);
};

/// Exact structural + value equality.
bool equal_exact(const CsrMatrix& a, const CsrMatrix& b);

/// Same structure; values compared with |x-y| <= atol + rtol*|y|.
bool equal_approx(const CsrMatrix& a, const CsrMatrix& b, double rtol = 1e-12,
                  double atol = 1e-12);

}  // namespace pbs::mtx
