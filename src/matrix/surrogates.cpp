#include "matrix/surrogates.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/matrix_market.hpp"

namespace pbs::mtx {

namespace {

enum class Recipe { kBanded, kEr, kWebHybrid };

struct RecipeEntry {
  SuiteEntry stats;
  Recipe recipe;
};

// Published Table VI numbers.  "K"/"M" expanded; flops/nnz_c rounded as
// printed in the paper — except offshore's nnz(C), which the paper prints
// as 69.8M although its own cf column (3.05 = flops/nnz(C)) and the same
// experiment in Nagasaka et al. [12] both give 23.4M; we store the
// consistent value.
const std::vector<RecipeEntry>& recipes() {
  static const std::vector<RecipeEntry> table = {
      {{"2cubes_sphere", 101492, 1647264, 16.23, 27500000, 9000000, 3.06}, Recipe::kBanded},
      {{"amazon0505", 410236, 3356824, 8.18, 31900000, 16100000, 1.98}, Recipe::kBanded},
      {{"cage12", 130228, 2032536, 15.61, 34600000, 15200000, 2.14}, Recipe::kBanded},
      {{"cant", 62451, 4007383, 64.17, 269500000, 17400000, 15.45}, Recipe::kBanded},
      {{"hood", 220542, 9895422, 44.87, 562000000, 34200000, 16.41}, Recipe::kBanded},
      {{"m133_b3", 200200, 800800, 4.00, 3200000, 3200000, 1.01}, Recipe::kEr},
      {{"majorbasis", 160000, 1750416, 10.94, 19200000, 8200000, 2.33}, Recipe::kBanded},
      {{"mc2depi", 525825, 2100225, 3.99, 8400000, 5200000, 1.6}, Recipe::kBanded},
      {{"offshore", 259789, 4242673, 16.33, 71300000, 23400000, 3.05}, Recipe::kBanded},
      {{"patents_main", 240547, 560943, 2.33, 2600000, 2300000, 1.14}, Recipe::kEr},
      {{"scircuit", 170998, 958936, 5.61, 8700000, 5200000, 1.66}, Recipe::kBanded},
      {{"web_Google", 916428, 5105039, 5.57, 60700000, 29700000, 2.04}, Recipe::kWebHybrid},
  };
  return table;
}

// Half-bandwidth that makes a banded A's square have the published cf:
// flop/row ≈ d², output row support ≈ 4w, so cf ≈ d²/(4w).
index_t banded_halfwidth(double d, double cf) {
  const double w = d * d / (4.0 * std::max(cf, 1.0));
  // The window must be able to host d distinct entries.
  return static_cast<index_t>(std::max({2.0, std::ceil(d / 2.0) + 1.0, std::round(w)}));
}

CsrMatrix build_surrogate(const SuiteEntry& e, Recipe recipe, double shrink) {
  const double f = std::max(1.0, shrink);
  const auto n = static_cast<index_t>(
      std::max<double>(64.0, std::round(static_cast<double>(e.n) / f)));
  const std::uint64_t seed = 0x5eedULL ^ std::hash<std::string>{}(e.name);

  switch (recipe) {
    case Recipe::kEr:
      return coo_to_csr(generate_er(n, n, e.d, seed));
    case Recipe::kBanded:
      return coo_to_csr(
          generate_banded(n, e.d, banded_halfwidth(e.d, e.cf), seed));
    case Recipe::kWebHybrid: {
      // Web graphs mix locality (link clusters) with power-law hubs.  Pure
      // Graph500-skew R-MAT over-squares (hub² flop explodes); a=0.45 skew
      // plus a thin band reproduces the degree tail and keeps flop(A²)
      // near the published value scaled by `shrink`.  The one fidelity gap:
      // cf lands ~1.1 instead of web-Google's 2.04 (real link-collision
      // structure resists synthetic mimicry); see EXPERIMENTS.md.
      const double band_d = std::min(3.5, e.d * 0.6);
      CooMatrix banded = generate_banded(n, band_d, 3, seed);
      RmatParams p;
      p.scale = std::max(6, ceil_log2(static_cast<std::uint64_t>(n)));
      p.edge_factor = std::max(0.5, e.d - band_d);
      p.a = 0.45;
      p.b = p.c = (1.0 - 0.45) / 3.0;
      p.seed = seed + 1;
      const CooMatrix rmat = generate_rmat(p);
      // R-MAT dimensions are the next power of two >= n; clamp its ids.
      CooMatrix merged(n, n);
      merged.row = std::move(banded.row);
      merged.col = std::move(banded.col);
      merged.val = std::move(banded.val);
      for (nnz_t i = 0; i < rmat.nnz(); ++i) {
        merged.add(rmat.row[i] % n, rmat.col[i] % n, rmat.val[i]);
      }
      merged.canonicalize();
      return coo_to_csr(merged);
    }
  }
  throw std::logic_error("unreachable recipe");
}

}  // namespace

const std::vector<SuiteEntry>& table6_suite() {
  static const std::vector<SuiteEntry> suite = [] {
    std::vector<SuiteEntry> s;
    s.reserve(recipes().size());
    for (const auto& r : recipes()) s.push_back(r.stats);
    return s;
  }();
  return suite;
}

std::vector<SuiteEntry> table6_sorted_by_cf() {
  std::vector<SuiteEntry> s = table6_suite();
  std::sort(s.begin(), s.end(),
            [](const SuiteEntry& a, const SuiteEntry& b) { return a.cf < b.cf; });
  return s;
}

const SuiteEntry& suite_entry(const std::string& name) {
  for (const auto& e : table6_suite()) {
    if (e.name == name) return e;
  }
  throw std::invalid_argument("unknown suite matrix: " + name);
}

SuiteMatrix load_suite_matrix(const SuiteEntry& entry, double shrink,
                              std::optional<std::string> dir_override) {
  SuiteMatrix out;
  out.entry = entry;

  std::string dir;
  if (dir_override) {
    dir = *dir_override;
  } else if (const char* env = std::getenv("PBS_MATRIX_DIR")) {
    dir = env;
  }
  if (!dir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(dir) / (entry.name + ".mtx");
    if (std::filesystem::exists(path)) {
      out.matrix = coo_to_csr(read_matrix_market(path.string()));
      out.from_file = true;
      return out;
    }
  }

  const Recipe recipe = [&] {
    for (const auto& r : recipes()) {
      if (r.stats.name == entry.name) return r.recipe;
    }
    throw std::invalid_argument("unknown suite matrix: " + entry.name);
  }();
  out.matrix = build_surrogate(entry, recipe, shrink);
  return out;
}

}  // namespace pbs::mtx
