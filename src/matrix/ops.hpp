// Element-wise and vector operations on CSR matrices.
//
// These are the substrate the example applications need around SpGEMM:
// triangle counting masks the product with the adjacency matrix, Markov
// clustering inflates/normalizes/prunes between multiplications,
// multi-source BFS multiplies against frontier indicator matrices, and the
// AMG example restricts/prolongates with triple products.
#pragma once

#include <span>
#include <vector>

#include "matrix/csr.hpp"

namespace pbs::mtx {

/// Hadamard (element-wise) product: C = A .* B.  Entries present in only
/// one operand vanish.
CsrMatrix hadamard(const CsrMatrix& a, const CsrMatrix& b);

/// C = alpha*A + beta*B (union of patterns; exact zeros are kept so the
/// result pattern is predictable).
CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, value_t alpha = 1.0,
              value_t beta = 1.0);

/// Strictly-lower-triangular part (entries with col < row + k).
CsrMatrix tril(const CsrMatrix& a, index_t k = 0);

/// Strictly-upper-triangular part (entries with col > row + k).
CsrMatrix triu(const CsrMatrix& a, index_t k = 0);

/// Drops entries with |value| < threshold.
CsrMatrix prune(const CsrMatrix& a, value_t threshold);

/// Keeps at most the k largest-magnitude entries per row (MCL's
/// "selection" pruning).  Ties resolved toward smaller column ids.
CsrMatrix keep_top_k_per_row(const CsrMatrix& a, index_t k);

/// Element-wise power (MCL inflation): every value v becomes v^p.
CsrMatrix element_power(const CsrMatrix& a, double p);

/// Scales columns so every non-empty column sums to 1 (MCL normalization;
/// column stochastic).
CsrMatrix normalize_columns(const CsrMatrix& a);

/// Removes diagonal entries.
CsrMatrix drop_diagonal(const CsrMatrix& a);

/// y = A x.
std::vector<value_t> spmv(const CsrMatrix& a, std::span<const value_t> x);

/// Per-row sums of values.
std::vector<value_t> row_sums(const CsrMatrix& a);

/// Per-column sums of values.
std::vector<value_t> col_sums(const CsrMatrix& a);

/// Sum of all values (e.g. total triangle count after masking).
value_t value_sum(const CsrMatrix& a);

/// max_ij |A_ij - B_ij| over the union pattern (convergence tests).
value_t max_abs_diff(const CsrMatrix& a, const CsrMatrix& b);

/// Symmetrizes: (A + Aᵀ) with duplicate entries summed.
CsrMatrix symmetrize(const CsrMatrix& a);

/// Keeps the entries of A whose positions lie in (complement = false) or
/// outside (complement = true) the pattern of `mask`; values pass through
/// untouched.  This is the value-safe form of masking — unlike
/// hadamard(a, to_pattern(mask)) it never multiplies, so it works for
/// non-numeric semiring values — and the oracle the masked SpGEMM paths
/// are tested against.  Requires matching shapes.
CsrMatrix pattern_filter(const CsrMatrix& a, const CsrMatrix& mask,
                         bool complement = false);

/// Pattern-only copy: all stored values become 1.0.
CsrMatrix to_pattern(const CsrMatrix& a);

}  // namespace pbs::mtx
