// Doubly-compressed sparse column (DCSC) — Buluç & Gilbert's hypersparse
// format [23], the data structure behind the outer-product SpGEMM family
// this paper builds on.
//
// CSC stores a column-pointer array of length ncols+1 even when almost all
// columns are empty; for *hypersparse* matrices (nnz < n — e.g. the
// frontier matrices of multi-source BFS, or 2-D-partitioned submatrices)
// that array dominates the footprint and, worse, the outer-product loop
// pays one pointer lookup per column instead of per non-empty column.
// DCSC keeps only the non-empty columns:
//
//   jc[k]  — the column id of the k-th non-empty column   (size nzc)
//   cp[k]  — start of that column's entries               (size nzc + 1)
//   rowids / vals — as in CSC                              (size nnz)
//
// so both the footprint and the iteration cost are O(nzc + nnz), not
// O(ncols + nnz).
#pragma once

#include <span>
#include <vector>

#include "matrix/csc.hpp"

namespace pbs::mtx {

struct DcscMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> jc;      ///< non-empty column ids, ascending
  std::vector<nnz_t> cp;        ///< size jc.size() + 1
  std::vector<index_t> rowids;  ///< row ids, sorted within each column
  std::vector<value_t> vals;

  DcscMatrix() : cp{0} {}

  [[nodiscard]] nnz_t nnz() const { return cp.empty() ? 0 : cp.back(); }

  /// Number of non-empty columns.
  [[nodiscard]] index_t nzc() const { return static_cast<index_t>(jc.size()); }

  [[nodiscard]] std::span<const index_t> col_rows(index_t k) const {
    return {rowids.data() + cp[k], static_cast<std::size_t>(cp[static_cast<std::size_t>(k) + 1] - cp[k])};
  }

  [[nodiscard]] std::span<const value_t> col_vals(index_t k) const {
    return {vals.data() + cp[k], static_cast<std::size_t>(cp[static_cast<std::size_t>(k) + 1] - cp[k])};
  }

  /// Structural invariants (ascending jc, monotone cp, sorted in-range
  /// rows, no empty stored columns).
  [[nodiscard]] bool valid() const;

  /// Bytes of index/pointer/value storage — the hypersparse comparison
  /// quantity (cf. footprint of CSC: (ncols+1)·8 + nnz·12).
  [[nodiscard]] std::size_t footprint_bytes() const;
};

/// CSC -> DCSC (drops empty columns).
DcscMatrix csc_to_dcsc(const CscMatrix& a);

/// DCSC -> CSC (re-materializes the full column-pointer array).
CscMatrix dcsc_to_csc(const DcscMatrix& a);

/// Footprint of the equivalent CSC, for the hypersparse crossover check.
std::size_t csc_footprint_bytes(const CscMatrix& a);

}  // namespace pbs::mtx
