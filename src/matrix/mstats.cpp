#include "matrix/mstats.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/types.hpp"

namespace pbs::mtx {

nnz_t count_flops(const CscMatrix& a, const CsrMatrix& b) {
  assert(a.ncols == b.nrows);
  nnz_t flops = 0;
#pragma omp parallel for reduction(+ : flops) schedule(static)
  for (index_t i = 0; i < a.ncols; ++i) {
    flops += a.col_nnz(i) * b.row_nnz(i);
  }
  return flops;
}

nnz_t count_flops(const CsrMatrix& a, const CsrMatrix& b) {
  assert(a.ncols == b.nrows);
  nnz_t flops = 0;
#pragma omp parallel for reduction(+ : flops) schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t row_flops = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      row_flops += b.row_nnz(a.colids[i]);
    flops += row_flops;
  }
  return flops;
}

nnz_t symbolic_nnz(const CsrMatrix& a, const CsrMatrix& b) {
  assert(a.ncols == b.nrows);
  nnz_t total = 0;

#pragma omp parallel reduction(+ : total)
  {
    // Per-thread "seen" marker array: mark[c] == current row sentinel means
    // column c was already counted for this row.  Avoids clearing between
    // rows.
    std::vector<index_t> mark(static_cast<std::size_t>(b.ncols), -1);
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < a.nrows; ++r) {
      nnz_t row_nnz = 0;
      for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t k = a.colids[i];
        for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
          const index_t c = b.colids[j];
          if (mark[c] != r) {
            mark[c] = r;
            ++row_nnz;
          }
        }
      }
      total += row_nnz;
    }
  }
  return total;
}

DegreeStats degree_stats(const CsrMatrix& a) {
  DegreeStats s;
  if (a.nrows == 0) return s;

  std::vector<nnz_t> degrees(static_cast<std::size_t>(a.nrows));
  for (index_t r = 0; r < a.nrows; ++r) degrees[r] = a.row_nnz(r);
  std::vector<nnz_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  s.min_degree = sorted.front();
  s.max_degree = sorted.back();
  s.mean_degree = static_cast<double>(a.nnz()) / a.nrows;
  s.p99_degree =
      sorted[static_cast<std::size_t>(0.99 * (sorted.size() - 1))];

  // Row flop of A·A: Σ_{k in A(r,:)} deg(k).
  nnz_t total_flop = 0;
  nnz_t max_flop = 0;
#pragma omp parallel for reduction(+ : total_flop) reduction(max : max_flop) \
    schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t f = 0;
    for (const index_t k : a.row_cols(r)) f += degrees[k];
    total_flop += f;
    max_flop = std::max(max_flop, f);
  }
  const double mean_flop =
      a.nrows > 0 ? static_cast<double>(total_flop) / a.nrows : 0.0;
  s.flop_imbalance = mean_flop > 0 ? static_cast<double>(max_flop) / mean_flop : 0.0;
  return s;
}

SquareStats square_stats(const CsrMatrix& a) {
  SquareStats s;
  s.n = a.nrows;
  s.nnz = a.nnz();
  s.d = a.avg_degree();
  s.flops = count_flops(a, a);
  s.nnz_c = symbolic_nnz(a, a);
  s.cf = s.nnz_c == 0 ? 0.0 : static_cast<double>(s.flops) / static_cast<double>(s.nnz_c);
  return s;
}

}  // namespace pbs::mtx
