#include "matrix/coo.hpp"

#include <cstdint>

#include "common/aligned_buffer.hpp"
#include "common/radix_sort.hpp"

namespace pbs::mtx {

void CooMatrix::reserve(nnz_t n) {
  row.reserve(static_cast<std::size_t>(n));
  col.reserve(static_cast<std::size_t>(n));
  val.reserve(static_cast<std::size_t>(n));
}

void CooMatrix::add(index_t r, index_t c, value_t v) {
  row.push_back(r);
  col.push_back(c);
  val.push_back(v);
}

void CooMatrix::canonicalize() {
  struct Rec {
    std::uint64_t key;
    value_t v;
  };
  const std::size_t n = row.size();
  if (n == 0) return;

  AlignedBuffer<Rec> recs(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i] = Rec{(static_cast<std::uint64_t>(static_cast<std::uint32_t>(row[i])) << 32) |
                      static_cast<std::uint32_t>(col[i]),
                  val[i]};
  }
  radix_sort(recs.data(), n, [](const Rec& r) { return r.key; });

  // Two-pointer merge of equal (row, col) keys.
  std::size_t out = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (recs[i].key == recs[out].key) {
      recs[out].v += recs[i].v;
    } else {
      recs[++out] = recs[i];
    }
  }
  const std::size_t m = out + 1;
  row.resize(m);
  col.resize(m);
  val.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    row[i] = static_cast<index_t>(recs[i].key >> 32);
    col[i] = static_cast<index_t>(recs[i].key & 0xFFFFFFFFu);
    val[i] = recs[i].v;
  }
}

bool CooMatrix::is_canonical() const {
  for (std::size_t i = 1; i < row.size(); ++i) {
    if (row[i - 1] > row[i]) return false;
    if (row[i - 1] == row[i] && col[i - 1] >= col[i]) return false;
  }
  return true;
}

bool CooMatrix::in_bounds() const {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] < 0 || row[i] >= nrows) return false;
    if (col[i] < 0 || col[i] >= ncols) return false;
  }
  return true;
}

}  // namespace pbs::mtx
