#include "matrix/dcsc.hpp"

namespace pbs::mtx {

bool DcscMatrix::valid() const {
  if (cp.size() != jc.size() + 1 || cp.front() != 0) return false;
  for (std::size_t k = 0; k < jc.size(); ++k) {
    if (jc[k] < 0 || jc[k] >= ncols) return false;
    if (k > 0 && jc[k - 1] >= jc[k]) return false;
    if (cp[k] >= cp[k + 1]) return false;  // stored columns are non-empty
    for (nnz_t i = cp[k]; i < cp[k + 1]; ++i) {
      if (rowids[i] < 0 || rowids[i] >= nrows) return false;
      if (i > cp[k] && rowids[i - 1] >= rowids[i]) return false;
    }
  }
  const auto n = static_cast<std::size_t>(cp.back());
  return rowids.size() == n && vals.size() == n;
}

std::size_t DcscMatrix::footprint_bytes() const {
  return jc.size() * sizeof(index_t) + cp.size() * sizeof(nnz_t) +
         rowids.size() * sizeof(index_t) + vals.size() * sizeof(value_t);
}

DcscMatrix csc_to_dcsc(const CscMatrix& a) {
  DcscMatrix out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  for (index_t c = 0; c < a.ncols; ++c) {
    if (a.col_nnz(c) == 0) continue;
    out.jc.push_back(c);
    out.cp.push_back(out.cp.back() + a.col_nnz(c));
  }
  out.rowids.reserve(static_cast<std::size_t>(a.nnz()));
  out.vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (const index_t c : out.jc) {
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    out.rowids.insert(out.rowids.end(), rows.begin(), rows.end());
    out.vals.insert(out.vals.end(), vals.begin(), vals.end());
  }
  return out;
}

CscMatrix dcsc_to_csc(const DcscMatrix& a) {
  CscMatrix out(a.nrows, a.ncols);
  out.rowids = a.rowids;
  out.vals = a.vals;
  for (std::size_t k = 0; k < a.jc.size(); ++k) {
    out.colptr[static_cast<std::size_t>(a.jc[k]) + 1] = a.cp[k + 1] - a.cp[k];
  }
  for (index_t c = 0; c < a.ncols; ++c) {
    out.colptr[static_cast<std::size_t>(c) + 1] += out.colptr[c];
  }
  return out;
}

std::size_t csc_footprint_bytes(const CscMatrix& a) {
  return a.colptr.size() * sizeof(nnz_t) +
         a.rowids.size() * sizeof(index_t) + a.vals.size() * sizeof(value_t);
}

}  // namespace pbs::mtx
